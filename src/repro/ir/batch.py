"""Batched floating-point interpreter.

Evaluates a :class:`~repro.ir.Program` over *all* stimuli of a
simulation at once: every runtime value is a float64 array with the
stimulus set as its trailing axis, and loops the
:mod:`~repro.ir.vectorize` analysis proves independent additionally
run as array *lanes* (leading axis) instead of Python iterations.

Because every operation remains elementwise float64 and program order
is preserved per lane, results are bit-identical to
:class:`~repro.ir.interp.Interpreter` — the golden contract pinned by
``tests/test_backend.py``.  The scalar interpreter stays the semantic
reference (and the only executor supporting tracing); this one exists
to make simulation-backed evaluation fast.

``range_probe`` is the batched counterpart of the scalar
``range_observer`` hook: it receives every produced value *array*
(instead of one call per scalar), which is all min/max range
observation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import InterpreterError
from repro.ir.block import BasicBlock
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program
from repro.ir.symbols import SymbolKind
from repro.ir.vectorize import VectorPlan, vector_plan

__all__ = [
    "BatchExecutorBase",
    "BatchInterpreter",
    "FormatBatchInterpreter",
    "OracleBatchInterpreter",
    "run_program_batch",
    "stack_input_columns",
]

#: Batched range-observation hook: ``(static op id, value array)``.
RangeProbe = Callable[[int, np.ndarray], None]


def stack_input_columns(decl, stimuli: Sequence[Mapping[str, np.ndarray]]):
    """One input array across all stimuli as flat (cells, stimuli) columns.

    Validates presence and shape per stimulus exactly like the scalar
    interpreters do; shared by the float and fixed-point batch
    executors (the latter quantizes the result afterwards).
    """
    columns = []
    for stimulus in stimuli:
        if decl.name not in stimulus:
            raise InterpreterError(f"missing input array {decl.name!r}")
        data = np.asarray(stimulus[decl.name], dtype=np.float64)
        if data.shape != decl.shape:
            raise InterpreterError(
                f"input {decl.name!r}: shape {data.shape} != "
                f"declared {decl.shape}"
            )
        columns.append(data.reshape(-1))
    return np.stack(columns, axis=1)


class BatchExecutorBase:
    """Shared structure walk of the batch executors.

    Subclasses implement ``_run_block`` (the per-op semantics over
    whichever value domain they execute in); the schedule walk — with
    plan-selected loops running as ``arange`` lanes instead of Python
    iterations — and the (possibly lane-valued) flat indexing are
    identical for every domain and live here.
    """

    def __init__(self, program: Program, plan: VectorPlan | None = None) -> None:
        self.program = program
        self.plan = plan if plan is not None else vector_plan(program)

    def _run_items(self, items, env: dict, state) -> None:
        for item in items:
            if isinstance(item, BlockRef):
                self._run_block(self.program.blocks[item.name], env, state)
            elif isinstance(item, LoopNode):
                if self.plan.is_vectorized(item):
                    env[item.var] = np.arange(item.trip)
                    self._run_items(item.body, env, state)
                    del env[item.var]
                else:
                    for i in range(item.trip):
                        env[item.var] = i
                        self._run_items(item.body, env, state)
                    del env[item.var]
            else:  # pragma: no cover - defensive
                raise InterpreterError(f"bad schedule item {item!r}")

    def _flat_index(self, op: Operation, env: Mapping):
        """Flat cell index: an int, or an int array over vector lanes."""
        decl = self.program.arrays[op.array]  # type: ignore[index]
        assert op.index is not None
        coords = [ix.evaluate(env) for ix in op.index]
        for coord, extent in zip(coords, decl.shape):
            if np.any((np.asarray(coord) < 0) | (np.asarray(coord) >= extent)):
                raise InterpreterError(
                    f"{op.kind.value} {op.array} out of bounds {decl.shape} "
                    f"(op {op.opid})"
                )
        if decl.rank == 1:
            return coords[0]
        return coords[0] * decl.shape[1] + coords[1]

    def _run_block(self, block: BasicBlock, env: Mapping, state) -> None:
        raise NotImplementedError  # pragma: no cover


class BatchInterpreter(BatchExecutorBase):
    """Float64 executor evaluating every stimulus in one pass.

    The four ``_const`` / ``_lift_scalar`` / ``_probe_value`` /
    ``_arith_result`` hooks parameterize the *value domain* without
    touching the walk: this class is the identity on all of them
    (plain float64 — bit-identical to the pre-hook executor), while
    :class:`OracleBatchInterpreter` and :class:`FormatBatchInterpreter`
    re-point them at :mod:`repro.formats` value types.
    """

    # ------------------------------------------------------------------
    # Value-domain hooks.
    def _const(self, op: Operation):
        """Domain value of a CONST literal."""
        return float(op.value)  # type: ignore[arg-type]

    def _lift_scalar(self, value):
        """Lift a program-declared scalar (variable init) into the domain."""
        return value

    def _probe_value(self, value):
        """Value as handed to ``range_probe`` (float64 for analyses)."""
        return value

    def _arith_result(self, op: Operation, values: dict):
        """Arithmetic in the domain (post-op rounding goes here)."""
        return _arith(op, values)

    # ------------------------------------------------------------------
    def run(
        self,
        stimuli: Sequence[Mapping[str, np.ndarray]],
        range_probe: RangeProbe | None = None,
    ) -> list[dict[str, np.ndarray]]:
        """Execute over ``stimuli``; returns one output dict per stimulus."""
        if not stimuli:
            raise InterpreterError("batch run needs at least one stimulus")
        storage = self._init_storage(stimuli)
        var_values: dict[str, np.ndarray | float] = {
            name: self._lift_scalar(decl.init)
            for name, decl in self.program.variables.items()
        }
        state = _BatchState(storage, var_values, range_probe)
        self._run_items(self.program.schedule, {}, state)
        return [
            {
                decl.name: storage[decl.name][:, s].copy().reshape(decl.shape)
                for decl in self.program.output_arrays()
            }
            for s in range(len(stimuli))
        ]

    # ------------------------------------------------------------------
    def _init_storage(
        self, stimuli: Sequence[Mapping[str, np.ndarray]]
    ) -> dict[str, np.ndarray]:
        """Flat (cells, stimuli) float64 columns per array symbol."""
        n_stimuli = len(stimuli)
        storage: dict[str, np.ndarray] = {}
        for decl in self.program.arrays.values():
            if decl.kind is SymbolKind.INPUT:
                storage[decl.name] = stack_input_columns(decl, stimuli)
            elif decl.kind is SymbolKind.COEFF:
                assert decl.values is not None
                flat = decl.values.reshape(-1).astype(np.float64)
                storage[decl.name] = np.repeat(flat[:, None], n_stimuli, axis=1)
            else:
                storage[decl.name] = np.zeros(
                    (decl.size, n_stimuli), dtype=np.float64
                )
        return storage

    # ------------------------------------------------------------------
    def _run_block(
        self, block: BasicBlock, env: Mapping, state: "_BatchState"
    ) -> None:
        values: dict[int, np.ndarray | float] = {}
        for op in block.ops:
            kind = op.kind
            if kind is OpKind.CONST:
                result = self._const(op)
            elif kind is OpKind.LOAD:
                flat = self._flat_index(op, env)
                result = state.storage[op.array][flat]
                if np.isscalar(flat) or np.ndim(flat) == 0:
                    # Basic indexing views the storage row; copy so the
                    # value is immune to later stores into the cell.
                    result = result.copy()
            elif kind is OpKind.STORE:
                result = values[op.operands[0]]
                flat = self._flat_index(op, env)
                state.storage[op.array][flat] = result
            elif kind is OpKind.READVAR:
                result = state.var_values[op.var]  # type: ignore[index]
            elif kind is OpKind.WRITEVAR:
                result = values[op.operands[0]]
                state.var_values[op.var] = result  # type: ignore[index]
            else:
                result = self._arith_result(op, values)
            values[op.opid] = result
            if state.range_probe is not None:
                state.range_probe(op.opid, self._probe_value(result))


def _arith(op: Operation, values: dict):
    kind = op.kind
    if op.is_binary:
        a = values[op.operands[0]]
        b = values[op.operands[1]]
        if kind is OpKind.ADD:
            return a + b
        if kind is OpKind.SUB:
            return a - b
        if kind is OpKind.MUL:
            return a * b
        # MIN/MAX mirror Python's min/max exactly — "b only if it
        # strictly improves on a" — so ties, signed zeros and NaN
        # operands all resolve to the same bits as the scalar
        # interpreter's min(a, b) / max(a, b).
        if kind is OpKind.MIN:
            return np.where(b < a, b, a)
        if kind is OpKind.MAX:
            return np.where(b > a, b, a)
        raise InterpreterError(f"unhandled binary op {kind}")  # pragma: no cover
    a = values[op.operands[0]]
    if kind is OpKind.NEG:
        return -a
    if kind is OpKind.ABS:
        return np.abs(a)
    raise InterpreterError(f"unhandled unary op {kind}")  # pragma: no cover


@dataclass
class _BatchState:
    storage: dict[str, np.ndarray]
    var_values: dict[str, np.ndarray | float]
    range_probe: RangeProbe | None


def run_program_batch(
    program: Program, stimuli: Sequence[Mapping[str, np.ndarray]]
) -> list[dict[str, np.ndarray]]:
    """One-shot convenience wrapper around :class:`BatchInterpreter`."""
    return BatchInterpreter(program).run(stimuli)


# ----------------------------------------------------------------------
# Format-domain executors (:mod:`repro.formats`).  Imported lazily:
# ``repro.formats`` pulls in the fixed-point package, which imports
# this module — a top-level import here would cycle.


def _object_map(func, array: np.ndarray) -> np.ndarray:
    """Elementwise ``func`` over ``array`` into a fresh object ndarray."""
    out = np.empty(array.shape, dtype=object)
    out.reshape(-1)[:] = [func(v) for v in array.reshape(-1).tolist()]
    return out


class OracleBatchInterpreter(BatchInterpreter):
    """The ``bigfloat`` oracle executor: exact-int binary floats.

    Same walk, but every runtime value is a
    :class:`~repro.formats.BigFloat` (object-dtype lanes), so each
    operation rounds at oracle precision (~4x float64) instead of 53
    bits.  Outputs and probed ranges come back as nearest-float64.
    """

    def __init__(
        self,
        program: Program,
        plan: VectorPlan | None = None,
        precision: int | None = None,
    ) -> None:
        super().__init__(program, plan)
        from repro.formats import ORACLE_PRECISION, BigFloat

        self._big = BigFloat
        self.precision = ORACLE_PRECISION if precision is None else precision

    def _from_float(self, value) -> object:
        return self._big.from_float(float(value), self.precision)

    # -- hooks ---------------------------------------------------------
    def _const(self, op: Operation):
        return self._from_float(op.value)

    def _lift_scalar(self, value):
        return self._from_float(value)

    def _probe_value(self, value):
        if isinstance(value, np.ndarray):
            return _object_map(float, value).astype(np.float64)
        return float(value)

    def _init_storage(self, stimuli):
        storage = super()._init_storage(stimuli)
        return {
            name: _object_map(self._from_float, columns)
            for name, columns in storage.items()
        }

    def run(self, stimuli, range_probe=None):
        outputs = super().run(stimuli, range_probe)
        return [
            {
                name: _object_map(float, arr).astype(np.float64)
                for name, arr in per_stimulus.items()
            }
            for per_stimulus in outputs
        ]


class FormatBatchInterpreter(BatchInterpreter):
    """Quantized execution in a reduced-precision binary float format.

    Inputs, coefficients, constants and variable inits are rounded
    into the format, and every ADD/SUB/MUL result is re-rounded — the
    correctly-rounded (RNE) semantics of running the kernel in that
    format.  MIN/MAX/NEG/ABS and data movement are exact on
    representable values, so no rounding is spent there.  Values are
    carried in float64 arrays, which represents every constructible
    format exactly (see :class:`repro.formats.FloatFormat`).
    """

    def __init__(
        self,
        program: Program,
        format_spec,
        plan: VectorPlan | None = None,
    ) -> None:
        super().__init__(program, plan)
        if format_spec.kind != "float":
            from repro.errors import FormatError

            raise FormatError(
                f"format {format_spec.name!r} (kind {format_spec.kind!r}) "
                f"is not a binary float execution format"
            )
        self.format = format_spec

    # -- hooks ---------------------------------------------------------
    def _const(self, op: Operation):
        return self.format.round_value(float(op.value))

    def _lift_scalar(self, value):
        return self.format.round_value(float(value))

    def _arith_result(self, op: Operation, values: dict):
        result = _arith(op, values)
        if op.kind in (OpKind.ADD, OpKind.SUB, OpKind.MUL):
            if isinstance(result, np.ndarray):
                return self.format.quantize_array(result)
            return self.format.round_value(float(result))
        return result

    def _init_storage(self, stimuli):
        storage = super()._init_storage(stimuli)
        for decl in self.program.arrays.values():
            if decl.kind in (SymbolKind.INPUT, SymbolKind.COEFF):
                storage[decl.name] = self.format.quantize_array(
                    storage[decl.name]
                )
        return storage
