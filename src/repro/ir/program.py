"""Whole-program IR container.

A :class:`Program` owns the symbol tables, the basic blocks, and the
*loop tree* describing how blocks nest inside counted loops.  The loop
tree is the only control flow in the IR — exactly the structured,
compile-time-counted loops of the paper's DSP kernels — which keeps the
interpreter, the cycle model and the accuracy analysis simple and
mutually consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import IRError
from repro.ir.block import BasicBlock
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.symbols import ArrayDecl, SymbolKind, VarDecl

__all__ = ["BlockRef", "LoopNode", "Program"]


@dataclass
class BlockRef:
    """Leaf of the loop tree: run the named block once."""

    name: str


@dataclass
class LoopNode:
    """Counted loop: run ``body`` for ``var`` = 0 .. trip-1."""

    var: str
    trip: int
    body: list[Union["LoopNode", BlockRef]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.trip <= 0:
            raise IRError(f"loop {self.var!r}: trip count must be positive")


ScheduleItem = Union[LoopNode, BlockRef]


@dataclass
class Program:
    """A complete kernel: symbols, blocks and loop structure."""

    name: str
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    variables: dict[str, VarDecl] = field(default_factory=dict)
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    schedule: list[ScheduleItem] = field(default_factory=list)

    # Populated by finalize():
    _ops_by_id: dict[int, Operation] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def finalize(self) -> "Program":
        """Index operations and annotate blocks with loop context."""
        self._ops_by_id = {}
        for block in self.blocks.values():
            for op in block.ops:
                if op.opid in self._ops_by_id:
                    raise IRError(f"duplicate opid {op.opid}")
                self._ops_by_id[op.opid] = op
        self._annotate_loop_context(self.schedule, (), ())
        return self

    def _annotate_loop_context(
        self,
        items: list[ScheduleItem],
        loop_vars: tuple[str, ...],
        trips: tuple[int, ...],
    ) -> None:
        for item in items:
            if isinstance(item, BlockRef):
                if item.name not in self.blocks:
                    raise IRError(f"schedule references unknown block {item.name!r}")
                block = self.blocks[item.name]
                block.loop_vars = loop_vars
                block.trip_counts = trips
            else:
                self._annotate_loop_context(
                    item.body, loop_vars + (item.var,), trips + (item.trip,)
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_ops(self) -> int:
        """Total number of operations across all blocks."""
        return len(self._ops_by_id)

    def op(self, opid: int) -> Operation:
        """Look up any operation by its program-global id."""
        try:
            return self._ops_by_id[opid]
        except KeyError:
            raise IRError(f"program {self.name!r} has no op {opid}") from None

    def all_ops(self) -> Iterator[Operation]:
        """All operations, in ascending id order."""
        for opid in sorted(self._ops_by_id):
            yield self._ops_by_id[opid]

    def block_of(self, opid: int) -> BasicBlock:
        """The block owning operation ``opid``."""
        return self.blocks[self.op(opid).block]

    def input_arrays(self) -> list[ArrayDecl]:
        return [a for a in self.arrays.values() if a.kind is SymbolKind.INPUT]

    def output_arrays(self) -> list[ArrayDecl]:
        return [a for a in self.arrays.values() if a.kind is SymbolKind.OUTPUT]

    def coeff_arrays(self) -> list[ArrayDecl]:
        return [a for a in self.arrays.values() if a.kind is SymbolKind.COEFF]

    def state_arrays(self) -> list[ArrayDecl]:
        return [a for a in self.arrays.values() if a.kind is SymbolKind.STATE]

    def blocks_by_priority(self) -> list[BasicBlock]:
        """Blocks sorted by execution count, highest first.

        This is the priority order of the paper's Fig. 1a (blocks that
        contribute most to execution time are optimized first, so the
        accuracy budget is spent where it pays).  Ties break by block
        name for determinism.
        """
        return sorted(
            self.blocks.values(),
            key=lambda b: (-b.executions, b.name),
        )

    def loop_extents(self) -> dict[str, tuple[int, int]]:
        """Inclusive (lo, hi) iteration ranges of every loop variable."""
        extents: dict[str, tuple[int, int]] = {}

        def visit(items: list[ScheduleItem]) -> None:
            for item in items:
                if isinstance(item, LoopNode):
                    extents[item.var] = (0, item.trip - 1)
                    visit(item.body)

        visit(self.schedule)
        return extents

    def total_arith_ops_executed(self) -> int:
        """Dynamic count of arithmetic/memory operations (profile proxy)."""
        total = 0
        for block in self.blocks.values():
            total += len(block.arithmetic_ops()) * block.executions
        return total

    def output_store_ops(self) -> list[Operation]:
        """Stores into OUTPUT arrays — where accuracy is measured."""
        outs = {a.name for a in self.output_arrays()}
        return [
            op
            for op in self.all_ops()
            if op.kind is OpKind.STORE and op.array in outs
        ]

    def __str__(self) -> str:
        from repro.ir.printer import format_program

        return format_program(self)
