"""Lane-vectorization analysis for the batch evaluation backend.

The batch interpreters (:mod:`repro.ir.batch`,
:mod:`repro.fixedpoint.fxpbatch`) evaluate every stimulus of a
simulation at once; this module decides which *loops* can additionally
be evaluated as array lanes — all iterations of the loop in one
elementwise sweep per operation — without changing a single result
bit.

A loop is lane-vectorizable when executing each operation of its body
once over a vector of iteration values is indistinguishable from the
scalar iteration order.  Because every op stays elementwise and the
body is walked in program order, that reduces to three conditions:

1. **Scalar variables carry nothing between iterations.**  Every
   variable touched in the body is local to the loop (never accessed
   outside it) and its first access in execution order is a write, so
   no lane ever observes another lane's value.
2. **Memory carries nothing between iterations.**  No array is both
   loaded and stored inside the body, so a load can never observe a
   store from a different (already-computed) lane.
3. **Stores from different lanes never collide.**  Two iterations of
   the loop never write the same cell, so the loss of cross-iteration
   write ordering is unobservable.  This is checked exactly, by
   enumerating every store's affine index over the loop's iteration
   space (bounded by :data:`MAX_ENUMERATED_STORES`).

The analysis picks the *outermost* eligible loops (largest lane
count); nested loops inside a vectorized loop simply stay ordinary
Python loops over lane-shaped values.  Programs with loop-carried
recurrences (e.g. IIR feedback) yield an empty plan and still benefit
from the stimulus axis alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.block import BasicBlock
from repro.ir.index import AffineIndex
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program

__all__ = ["MAX_ENUMERATED_STORES", "VectorPlan", "build_vector_plan",
           "vector_plan"]

#: Upper bound on the store-index enumeration of one candidate loop;
#: candidates above it are conservatively rejected.
MAX_ENUMERATED_STORES = 1 << 22


@dataclass(frozen=True)
class VectorPlan:
    """Which loops of a program the batch backend runs as lanes."""

    program: Program
    #: ``id()`` of every :class:`LoopNode` chosen for vectorization.
    loop_ids: frozenset[int]
    #: Human-readable summary: ``(loop var, trip count)`` per loop.
    loops: tuple[tuple[str, int], ...]

    def is_vectorized(self, loop: LoopNode) -> bool:
        return id(loop) in self.loop_ids

    def describe(self) -> str:
        if not self.loops:
            return "no lane-vectorizable loops (stimulus axis only)"
        lanes = ", ".join(f"{var}[{trip}]" for var, trip in self.loops)
        return f"vector lanes: {lanes}"


def vector_plan(program: Program) -> VectorPlan:
    """The (memoized) vectorization plan of ``program``."""
    cached = getattr(program, "_vector_plan", None)
    if cached is not None:
        return cached
    plan = build_vector_plan(program)
    try:
        program._vector_plan = plan
    except AttributeError:  # pragma: no cover - slotted Program variant
        pass
    return plan


def build_vector_plan(program: Program) -> VectorPlan:
    """Analyze ``program`` and choose its outermost vectorizable loops."""
    accesses = _variable_access_blocks(program)
    chosen: list[LoopNode] = []

    def visit(items) -> None:
        for item in items:
            if not isinstance(item, LoopNode):
                continue
            if _loop_is_vectorizable(program, item, accesses):
                chosen.append(item)
            else:
                visit(item.body)

    visit(program.schedule)
    return VectorPlan(
        program,
        frozenset(id(loop) for loop in chosen),
        tuple((loop.var, loop.trip) for loop in chosen),
    )


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------

def _variable_access_blocks(program: Program) -> dict[str, set[str]]:
    """Names of the blocks touching each scalar variable."""
    accesses: dict[str, set[str]] = {}
    for block in program.blocks.values():
        for op in block.ops:
            if op.var is not None:
                accesses.setdefault(op.var, set()).add(block.name)
    return accesses


def _body_blocks(program: Program, loop: LoopNode) -> list[BasicBlock]:
    """Blocks of the loop body, in execution (schedule) order."""
    blocks: list[BasicBlock] = []

    def visit(items) -> None:
        for item in items:
            if isinstance(item, BlockRef):
                blocks.append(program.blocks[item.name])
            else:
                visit(item.body)

    visit(loop.body)
    return blocks


def _loop_is_vectorizable(
    program: Program, loop: LoopNode, accesses: dict[str, set[str]]
) -> bool:
    blocks = _body_blocks(program, loop)
    block_names = {block.name for block in blocks}

    loaded: set[str] = set()
    stored: set[str] = set()
    first_var_access: dict[str, OpKind] = {}
    stores: list[tuple[Operation, BasicBlock]] = []
    for block in blocks:
        for op in block.ops:
            if op.kind is OpKind.LOAD:
                loaded.add(op.array)  # type: ignore[arg-type]
            elif op.kind is OpKind.STORE:
                stored.add(op.array)  # type: ignore[arg-type]
                stores.append((op, block))
            elif op.var is not None:
                first_var_access.setdefault(op.var, op.kind)

    # 1. Variables: loop-local, written before read.
    for var, first_kind in first_var_access.items():
        if accesses.get(var, set()) - block_names:
            return False  # value escapes (or enters) the loop
        if first_kind is not OpKind.WRITEVAR:
            return False  # loop-carried scalar recurrence
    # 2. Memory: no array both read and written in the body.
    if loaded & stored:
        return False
    # 3. Stores: no two lanes may ever write the same cell.
    return _stores_lane_disjoint(program, loop, stores)


def _flat_affine(program: Program, op: Operation) -> AffineIndex:
    """The store/load subscript as a single flat (row-major) affine."""
    decl = program.arrays[op.array]  # type: ignore[index]
    assert op.index is not None
    flat = AffineIndex.constant(0)
    for index, stride in zip(op.index, _strides(decl.shape)):
        flat = flat + index.scaled(stride)
    return flat


def _strides(shape: tuple[int, ...]) -> tuple[int, ...]:
    strides = [1]
    for extent in reversed(shape[1:]):
        strides.append(strides[-1] * extent)
    return tuple(reversed(strides))


def _stores_lane_disjoint(
    program: Program, loop: LoopNode,
    stores: list[tuple[Operation, BasicBlock]],
) -> bool:
    """Exact check that distinct lanes never write one cell.

    For every store the flat index is enumerated over the iteration
    space it depends on and every (outer context, cell, lane) triple is
    collected per array; a cell reached from two different lanes within
    the same outer context kills the candidate.

    Loop variables *enclosing* the candidate loop are a common additive
    offset for every lane of one execution, so they cancel out of any
    collision comparison *within one store* — but not across two stores
    whose indices carry different outer coefficients.  They are
    therefore fixed at zero only when every store of an array agrees on
    them; otherwise the outer iteration space is enumerated as the
    collision context.
    """
    by_array: dict[str, list[tuple[Operation, BasicBlock, dict]]] = {}
    for op, block in stores:
        coeffs = dict(_flat_affine(program, op).terms)
        if coeffs.get(loop.var, 0) == 0:
            if loop.trip > 1:
                return False  # every lane writes the same cell
            continue
        by_array.setdefault(op.array, []).append(  # type: ignore[arg-type]
            (op, block, coeffs)
        )

    for array_stores in by_array.values():
        # Outer nest of the candidate loop (identical for every body
        # block); enumerated only when the stores disagree on it.
        _op0, block0, _c0 = array_stores[0]
        position = block0.loop_vars.index(loop.var)
        outer = list(zip(block0.loop_vars[:position],
                         block0.trip_counts[:position]))
        coeff_vectors = {
            tuple(coeffs.get(var, 0) for var, _ in outer)
            for _op, _block, coeffs in array_stores
        }
        context_vars: list[tuple[str, int]] = []
        if len(coeff_vectors) > 1:
            context_vars = [
                (var, trip) for var, trip in outer
                if any(coeffs.get(var, 0) != 0
                       for _op, _block, coeffs in array_stores)
            ]

        cells_all, lanes_all, contexts_all = [], [], []
        for op, block, coeffs in array_stores:
            inner_position = block.loop_vars.index(loop.var)
            varying = context_vars + [
                (var, trip)
                for var, trip in zip(
                    block.loop_vars[inner_position:],
                    block.trip_counts[inner_position:],
                )
                if coeffs.get(var, 0) != 0
            ]
            grid_size = int(np.prod([trip for _, trip in varying]))
            if grid_size > MAX_ENUMERATED_STORES:
                return False  # too large to prove disjoint; stay scalar
            grids = np.meshgrid(
                *(np.arange(trip) for _, trip in varying), indexing="ij"
            )
            env = {var: grid for (var, _), grid in zip(varying, grids)}
            flat = _flat_affine(program, op)
            cells = flat.const + sum(
                coeff * env.get(var, 0) for var, coeff in flat.terms
            )
            # Mixed-radix id of the outer iteration; collisions only
            # count between instances sharing it.
            context = 0
            for var, trip in context_vars:
                context = context * trip + env[var]
            shape = np.shape(cells)
            cells_all.append(np.ravel(cells))
            lanes_all.append(
                np.ravel(np.broadcast_to(env[loop.var], shape))
            )
            contexts_all.append(np.ravel(np.broadcast_to(context, shape)))

        cells = np.concatenate(cells_all)
        lanes = np.concatenate(lanes_all)
        contexts = np.concatenate(contexts_all)
        order = np.lexsort((lanes, contexts, cells))
        cells, lanes, contexts = cells[order], lanes[order], contexts[order]
        same_cell = (cells[1:] == cells[:-1]) & (contexts[1:] == contexts[:-1])
        if np.any(same_cell & (lanes[1:] != lanes[:-1])):
            return False
    return True
