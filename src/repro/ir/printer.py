"""Human-readable IR dumps (C-like pseudocode)."""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program

__all__ = ["format_op", "format_block", "format_program"]

_INFIX = {
    OpKind.ADD: "+",
    OpKind.SUB: "-",
    OpKind.MUL: "*",
}


def format_op(op: Operation) -> str:
    """One-line rendering of a single operation."""
    if op.kind is OpKind.CONST:
        rhs = f"{op.value!r}"
    elif op.kind is OpKind.LOAD:
        subs = "][".join(str(ix) for ix in op.index or ())
        rhs = f"{op.array}[{subs}]"
    elif op.kind is OpKind.STORE:
        subs = "][".join(str(ix) for ix in op.index or ())
        return f"{op.array}[{subs}] = %{op.operands[0]}"
    elif op.kind is OpKind.READVAR:
        rhs = f"${op.var}"
    elif op.kind is OpKind.WRITEVAR:
        return f"${op.var} = %{op.operands[0]}"
    elif op.kind in _INFIX:
        a, b = op.operands
        rhs = f"%{a} {_INFIX[op.kind]} %{b}"
    elif op.is_binary:
        a, b = op.operands
        rhs = f"{op.kind.value}(%{a}, %{b})"
    else:
        rhs = f"{op.kind.value}(%{op.operands[0]})"
    suffix = f"    ; {op.label}" if op.label else ""
    return f"%{op.opid} = {rhs}{suffix}"


def format_block(block: BasicBlock, indent: str = "") -> str:
    """Multi-line rendering of a basic block."""
    lines = [f"{indent}block {block.name}:"]
    for op in block.ops:
        lines.append(f"{indent}  {format_op(op)}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Full program dump: symbols, then the loop tree with blocks."""
    lines: list[str] = [f"program {program.name}:"]
    for decl in program.arrays.values():
        extra = f" range={decl.value_range}" if decl.value_range else ""
        lines.append(
            f"  array {decl.name}{list(decl.shape)} : {decl.kind.value}{extra}"
        )
    for var in program.variables.values():
        lines.append(f"  var ${var.name} = {var.init}")

    def visit(items, depth: int) -> None:
        pad = "  " * depth
        for item in items:
            if isinstance(item, BlockRef):
                lines.append(format_block(program.blocks[item.name], pad))
            elif isinstance(item, LoopNode):
                lines.append(f"{pad}for {item.var} in 0..{item.trip - 1}:")
                visit(item.body, depth + 1)

    visit(program.schedule, 1)
    return "\n".join(lines)
