"""Auxiliary kernels used by examples and tests.

Not part of the paper's benchmark suite, but exercising parts of the
IR the three paper kernels do not (ABS/SUB in SAD, multiple outputs in
scale-offset), and small enough for quick-start material.
"""

from __future__ import annotations


from repro.errors import IRError, unknown_name_error
from repro.ir.builder import ProgramBuilder
from repro.ir.index import loop_index
from repro.ir.program import Program

__all__ = [
    "dot_product",
    "kernel_by_name",
    "kernel_catalog",
    "kernel_names",
    "sad",
    "scale_offset",
]


def dot_product(length: int = 64, unroll: int = 4, name: str = "dot") -> Program:
    """Unrolled dot product of two input vectors (quick-start kernel)."""
    if length % unroll:
        raise IRError(f"length ({length}) must be divisible by unroll ({unroll})")
    builder = ProgramBuilder(name)
    a = builder.input_array("a", (length,), value_range=(-1.0, 1.0))
    bv = builder.input_array("b", (length,), value_range=(-1.0, 1.0))
    out = builder.output_array("out", (1,))
    accumulators = [builder.scalar(f"acc{j}") for j in range(unroll)]

    i = loop_index("i")
    with builder.block("init"):
        zero = builder.const(0.0)
        for acc in accumulators:
            builder.setvar(acc, zero)
    with builder.loop("i", length // unroll):
        with builder.block("body"):
            for j, acc in enumerate(accumulators):
                av = builder.load(a, i * unroll + j)
                bvv = builder.load(bv, i * unroll + j)
                builder.setvar(
                    acc, builder.add(builder.getvar(acc), builder.mul(av, bvv))
                )
    with builder.block("reduce"):
        partials = [builder.getvar(acc) for acc in accumulators]
        while len(partials) > 1:
            partials = [
                builder.add(partials[i2], partials[i2 + 1])
                for i2 in range(0, len(partials) - 1, 2)
            ] + ([partials[-1]] if len(partials) % 2 else [])
        builder.store(out, 0, partials[0])
    return builder.build()


def sad(length: int = 64, unroll: int = 4, name: str = "sad") -> Program:
    """Sum of absolute differences (motion estimation inner loop)."""
    if length % unroll:
        raise IRError(f"length ({length}) must be divisible by unroll ({unroll})")
    builder = ProgramBuilder(name)
    a = builder.input_array("ref", (length,), value_range=(-1.0, 1.0))
    bv = builder.input_array("cur", (length,), value_range=(-1.0, 1.0))
    out = builder.output_array("out", (1,))
    accumulators = [builder.scalar(f"acc{j}") for j in range(unroll)]

    i = loop_index("i")
    with builder.block("init"):
        zero = builder.const(0.0)
        for acc in accumulators:
            builder.setvar(acc, zero)
    with builder.loop("i", length // unroll):
        with builder.block("body"):
            for j, acc in enumerate(accumulators):
                av = builder.load(a, i * unroll + j)
                bvv = builder.load(bv, i * unroll + j)
                diff = builder.abs_(builder.sub(av, bvv))
                builder.setvar(acc, builder.add(builder.getvar(acc), diff))
    with builder.block("reduce"):
        partials = [builder.getvar(acc) for acc in accumulators]
        while len(partials) > 1:
            partials = [
                builder.add(partials[i2], partials[i2 + 1])
                for i2 in range(0, len(partials) - 1, 2)
            ] + ([partials[-1]] if len(partials) % 2 else [])
        builder.store(out, 0, partials[0])
    return builder.build()


def scale_offset(
    length: int = 64,
    scale: float = 0.7,
    offset: float = 0.05,
    name: str = "scale_offset",
) -> Program:
    """Elementwise ``y = scale * x + offset`` (simplest SLP shape)."""
    builder = ProgramBuilder(name)
    x = builder.input_array("x", (length,), value_range=(-1.0, 1.0))
    y = builder.output_array("y", (length,))
    i = loop_index("i")
    unroll = 2
    if length % unroll:
        raise IRError(f"length ({length}) must be even")
    with builder.loop("i", length // unroll):
        with builder.block("body"):
            for j in range(unroll):
                xv = builder.load(x, i * unroll + j)
                scaled = builder.mul(xv, builder.const(scale))
                builder.store(
                    y, i * unroll + j,
                    builder.add(scaled, builder.const(offset)),
                )
    return builder.build()


def kernel_catalog() -> dict[str, tuple]:
    """Every registered kernel: name → (factory, one-line description)."""
    from repro.kernels.conv2d import conv2d
    from repro.kernels.fir import fir
    from repro.kernels.iir import iir

    return {
        "conv": (conv2d, "3x3 image convolution, fully unrolled (paper)"),
        "dot": (dot_product, "unrolled dot product (quick-start kernel)"),
        "fir": (fir, "64-tap FIR filter, tap loop unrolled by 4 (paper)"),
        "iir": (iir, "10th-order IIR filter, direct form I (paper)"),
        "sad": (sad, "sum of absolute differences (motion estimation)"),
        "scale_offset": (scale_offset, "elementwise y = scale*x + offset"),
    }


def kernel_names() -> list[str]:
    """Names accepted by :func:`kernel_by_name`."""
    return sorted(kernel_catalog())


def kernel_by_name(name: str, **kwargs) -> Program:
    """Factory used by the CLI: any :func:`kernel_catalog` entry."""
    catalog = kernel_catalog()
    if name not in catalog:
        raise unknown_name_error(IRError, "kernel", name, catalog)
    return catalog[name][0](**kwargs)
