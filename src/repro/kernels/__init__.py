"""The paper's benchmark kernels (plus auxiliary examples)."""

from repro.kernels.conv2d import conv2d, default_conv_kernel
from repro.kernels.extra import (
    dot_product,
    kernel_by_name,
    kernel_catalog,
    kernel_names,
    sad,
    scale_offset,
)
from repro.kernels.fir import default_fir_coefficients, fir
from repro.kernels.iir import default_iir_coefficients, iir

__all__ = [
    "conv2d",
    "default_conv_kernel",
    "default_fir_coefficients",
    "default_iir_coefficients",
    "dot_product",
    "fir",
    "iir",
    "kernel_by_name",
    "kernel_catalog",
    "kernel_names",
    "sad",
    "scale_offset",
]
