"""The paper's 2-D convolution benchmark.

A 3x3 image convolution with the kernel fully unrolled (paper Section
V-C: "the convolution kernel (3x3) is fully unrolled").  The nine
multiply terms are summed by a balanced tree; row-adjacent loads are
contiguous in memory, giving SLP its vector-load opportunities.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IRError
from repro.ir.builder import ProgramBuilder
from repro.ir.index import loop_index
from repro.ir.program import Program

__all__ = ["conv2d", "default_conv_kernel"]


def default_conv_kernel() -> np.ndarray:
    """A normalized 3x3 binomial (Gaussian-blur) kernel."""
    kernel = np.array(
        [[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]]
    )
    return kernel / kernel.sum()


def conv2d(
    height: int = 66,
    width: int = 66,
    kernel: np.ndarray | None = None,
    name: str | None = None,
) -> Program:
    """Build the CONV benchmark: valid 3x3 convolution of an image.

    Output shape is ``(height-2, width-2)``; inputs are normalized to
    [-1, 1] like the 1-D benchmarks.
    """
    taps = default_conv_kernel() if kernel is None else np.asarray(kernel)
    if taps.shape != (3, 3):
        raise IRError(f"kernel must be 3x3, got {taps.shape}")
    if height < 3 or width < 3:
        raise IRError("image must be at least 3x3")

    builder = ProgramBuilder(name or "conv3x3")
    img = builder.input_array("img", (height, width), value_range=(-1.0, 1.0))
    ker = builder.coeff_array("ker", taps)
    out = builder.output_array("out", (height - 2, width - 2))

    r = loop_index("r")
    c = loop_index("c")
    with builder.loop("r", height - 2):
        with builder.loop("c", width - 2):
            with builder.block("body"):
                terms = []
                for dr in range(3):
                    for dc in range(3):
                        pixel = builder.load(img, r + dr, c + dc)
                        weight = builder.load(ker, dr, dc)
                        terms.append(
                            builder.mul(pixel, weight, label=f"k{dr}{dc}")
                        )
                while len(terms) > 1:
                    terms = [
                        builder.add(terms[i], terms[i + 1])
                        for i in range(0, len(terms) - 1, 2)
                    ] + ([terms[-1]] if len(terms) % 2 else [])
                builder.store(out, (r, c), terms[0], label="out[r][c]")
    return builder.build()
