"""The paper's IIR benchmark.

A 10th-order IIR filter in direct form I, with both tap loops
partially unrolled by 4 into four shared partial accumulators (paper
Section V-C).  The feedback taps use *negated* coefficients so every
multiply-accumulate is an isomorphic ``acc += value * coeff`` —
exactly what an engineer does to expose SLP in a DF-I loop.

Tap counts are padded with zero coefficients to a multiple of the
unroll factor (the standard trick); the padded taps read guard cells
that are always zero, so the filter's response is unchanged.
"""

from __future__ import annotations

import numpy as np
import scipy.signal

from repro.errors import IRError
from repro.ir.builder import ProgramBuilder
from repro.ir.index import loop_index
from repro.ir.program import Program
from repro.utils import ceil_div

__all__ = ["iir", "default_iir_coefficients"]


def default_iir_coefficients(order: int = 10) -> tuple[np.ndarray, np.ndarray]:
    """(b, a) of a stable Butterworth lowpass of the given order."""
    b, a = scipy.signal.butter(order, 0.25)
    return np.asarray(b), np.asarray(a)


def iir(
    n_samples: int = 2048,
    order: int = 10,
    unroll: int = 4,
    coefficients: tuple[np.ndarray, np.ndarray] | None = None,
    name: str | None = None,
) -> Program:
    """Build the IIR benchmark program (direct form I).

    ``y[n] = sum_i b[i] x[n-i] - sum_j a[j] y[n-j]`` with ``order+1``
    feed-forward and ``order`` feedback taps.
    """
    if coefficients is None:
        b_taps, a_taps = default_iir_coefficients(order)
    else:
        b_taps = np.asarray(coefficients[0], dtype=np.float64)
        a_taps = np.asarray(coefficients[1], dtype=np.float64)
    if len(b_taps) != order + 1 or len(a_taps) != order + 1:
        raise IRError(
            f"order-{order} filter needs {order + 1} coefficients per side"
        )
    if abs(a_taps[0] - 1.0) > 1e-12:
        raise IRError("a[0] must be 1 (normalized filter)")

    n_b = ceil_div(order + 1, unroll) * unroll
    n_a = ceil_div(order, unroll) * unroll
    b_padded = np.zeros(n_b)
    b_padded[: order + 1] = b_taps
    # Feedback taps negated: acc += y_hist * (-a[j]).
    na_padded = np.zeros(n_a)
    na_padded[:order] = -a_taps[1:]

    # Guard cells: b taps reach x[n + order - i] for i < n_b, i.e. down
    # to index n + order - (n_b - 1); a taps reach y[n + order - j] for
    # 1 <= j <= n_a.  Shifting all indices by the pad depth keeps every
    # subscript non-negative, and guard cells stay zero forever.
    x_guard = max(0, n_b - 1 - order)
    y_guard = max(0, n_a - order)

    builder = ProgramBuilder(name or f"iir{order}")
    x = builder.input_array(
        "x", (n_samples + order + x_guard,), value_range=(-1.0, 1.0)
    )
    bc = builder.coeff_array("bc", b_padded)
    nac = builder.coeff_array("nac", na_padded)
    y = builder.output_array("y", (n_samples + order + y_guard,))
    accumulators = [builder.scalar(f"acc{j}") for j in range(unroll)]

    n = loop_index("n")
    k = loop_index("k")
    with builder.loop("n", n_samples):
        with builder.block("init"):
            zero = builder.const(0.0)
            for acc in accumulators:
                builder.setvar(acc, zero)
        with builder.loop("k", n_b // unroll):
            with builder.block("btaps"):
                for j, acc in enumerate(accumulators):
                    tap = k * unroll + j
                    xv = builder.load(x, n + order + x_guard - tap)
                    cv = builder.load(bc, tap)
                    term = builder.mul(xv, cv, label=f"b{j}")
                    builder.setvar(acc, builder.add(builder.getvar(acc), term))
        with builder.loop("k", n_a // unroll):
            with builder.block("ataps"):
                for j, acc in enumerate(accumulators):
                    tap = k * unroll + j  # feedback delay = tap + 1
                    yv = builder.load(y, n + order + y_guard - 1 - tap)
                    cv = builder.load(nac, tap)
                    term = builder.mul(yv, cv, label=f"a{j}")
                    builder.setvar(acc, builder.add(builder.getvar(acc), term))
        with builder.block("reduce"):
            partials = [builder.getvar(acc) for acc in accumulators]
            while len(partials) > 1:
                partials = [
                    builder.add(partials[i], partials[i + 1])
                    for i in range(0, len(partials) - 1, 2)
                ] + ([partials[-1]] if len(partials) % 2 else [])
            builder.store(y, n + order + y_guard, partials[0], label="y[n]")
    return builder.build()
