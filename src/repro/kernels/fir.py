"""The paper's FIR benchmark.

A 64-tap FIR filter whose innermost (tap) loop is partially unrolled
by 4 with four partial accumulators (Section V-C: "the innermost loop
in FIR ... is partially unrolled by 4 to expose SLP").  The filter is
written in correlation form, ``y[n] = sum_k x[n+k] * h[k]``, so that
the data and coefficient lanes of an unrolled iteration walk memory in
the same ascending order — the layout every production FIR kernel uses
to make vector loads possible.
"""

from __future__ import annotations

import numpy as np
import scipy.signal

from repro.errors import IRError
from repro.ir.builder import ProgramBuilder
from repro.ir.index import loop_index
from repro.ir.program import Program

__all__ = ["fir", "default_fir_coefficients"]


def default_fir_coefficients(n_taps: int = 64) -> np.ndarray:
    """A unit-DC-gain lowpass (the classic benchmark filter)."""
    return scipy.signal.firwin(n_taps, 0.25)


def fir(
    n_samples: int = 2048,
    n_taps: int = 64,
    unroll: int = 4,
    coefficients: np.ndarray | None = None,
    name: str | None = None,
) -> Program:
    """Build the FIR benchmark program.

    Parameters
    ----------
    n_samples:
        Output length (outer loop trip count).
    n_taps:
        Filter length; must be divisible by ``unroll``.
    unroll:
        Partial unroll factor of the tap loop (paper: 4), one partial
        accumulator per unrolled lane.
    coefficients:
        Filter taps; defaults to a 0.25-normalized-band lowpass.
    """
    if n_taps % unroll:
        raise IRError(f"n_taps ({n_taps}) must be divisible by unroll ({unroll})")
    taps = (
        default_fir_coefficients(n_taps)
        if coefficients is None
        else np.asarray(coefficients, dtype=np.float64)
    )
    if taps.shape != (n_taps,):
        raise IRError(f"expected {n_taps} coefficients, got {taps.shape}")

    b = ProgramBuilder(name or f"fir{n_taps}")
    x = b.input_array("x", (n_samples + n_taps - 1,), value_range=(-1.0, 1.0))
    h = b.coeff_array("h", taps)
    y = b.output_array("y", (n_samples,))
    accumulators = [b.scalar(f"acc{j}") for j in range(unroll)]

    n = loop_index("n")
    k = loop_index("k")
    with b.loop("n", n_samples):
        with b.block("init"):
            zero = b.const(0.0)
            for acc in accumulators:
                b.setvar(acc, zero)
        with b.loop("k", n_taps // unroll):
            with b.block("body"):
                for j, acc in enumerate(accumulators):
                    xv = b.load(x, n + k * unroll + j)
                    hv = b.load(h, k * unroll + j)
                    term = b.mul(xv, hv, label=f"tap{j}")
                    b.setvar(acc, b.add(b.getvar(acc), term), label=f"acc{j}")
        with b.block("reduce"):
            partials = [b.getvar(acc) for acc in accumulators]
            while len(partials) > 1:
                partials = [
                    b.add(partials[i], partials[i + 1])
                    for i in range(0, len(partials) - 1, 2)
                ] + ([partials[-1]] if len(partials) % 2 else [])
            b.store(y, n, partials[0], label="y[n]")
    return b.build()
