"""Code generation: IR -> machine ops (cycles) and IR -> C source."""

from repro.codegen.ccode import emit_fixed_point_c, emit_simd_c
from repro.codegen.floatgen import lower_float_block, lower_float_program
from repro.codegen.scalar import (
    ScalarLowering,
    lower_scalar_block,
    lower_scalar_program,
)
from repro.codegen.simd import (
    VectorVarSet,
    collect_vector_vars,
    lower_simd_block,
    lower_simd_program,
)

__all__ = [
    "ScalarLowering",
    "VectorVarSet",
    "collect_vector_vars",
    "emit_fixed_point_c",
    "emit_simd_c",
    "lower_float_block",
    "lower_float_program",
    "lower_scalar_block",
    "lower_scalar_program",
    "lower_simd_block",
    "lower_simd_program",
]
