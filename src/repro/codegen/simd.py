"""SIMD lowering.

Lowers blocks under a fixed-point spec *and* a set of SIMD groups:
grouped operations become single vector instructions, operands arrive
either for free (superword reuse in matching lane order, contiguous
vector memory accesses, loop-carried vector registers) or through
explicit pack/permute/extract sequences — the overhead the whole paper
revolves around.

Scaling shifts follow the Fig. 2 rules: a reuse edge whose per-lane
shift amounts are uniform costs at most one vector shift; non-uniform
amounts force unpack / scalar shifts / repack.  ``SCALOPTIM`` exists
to move specs from the second case into the first, and its effect is
measured exactly here.

Cross-block vector variables: when lanes of a group write scalar
variables (the unrolled accumulator pattern), those variables live in
one vector register program-wide; blocks that access them scalarly
(the init/reduction blocks) pay pack/extract costs, the hot loop pays
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CodegenError
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.block import BasicBlock
from repro.ir.deps import is_loop_invariant_load
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.codegen.scalar import ScalarLowering
from repro.scheduler.machineop import MachineBlock
from repro.slp.groups import GroupSet, SIMDGroup, memory_lane_stride
from repro.targets.model import TargetModel

__all__ = [
    "VectorVarSet",
    "collect_vector_vars",
    "lower_simd_block",
    "lower_simd_program",
]

_VECTOR_ALU = {
    OpKind.ADD: "vadd",
    OpKind.SUB: "vsub",
    OpKind.MIN: "vmin",
    OpKind.MAX: "vmax",
    OpKind.NEG: "vneg",
    OpKind.ABS: "vabs",
}


@dataclass(frozen=True)
class VectorVarSet:
    """Scalar variables that live as lanes of one vector register."""

    key: tuple[str, int]
    vars: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.vars)


def collect_vector_vars(
    program: Program, groups_by_block: dict[str, GroupSet]
) -> dict[str, tuple[VectorVarSet, int]]:
    """Map each vector-resident variable to its (set, lane).

    A variable is vector-resident when a grouped lane's value is
    written to it — the unrolled-accumulator pattern.
    """
    result: dict[str, tuple[VectorVarSet, int]] = {}
    for block_name, groups in groups_by_block.items():
        block = program.blocks[block_name]
        written_by: dict[int, str] = {}
        for op in block.ops:
            if op.kind is OpKind.WRITEVAR:
                written_by[op.operands[0]] = op.var  # type: ignore[assignment]
        for group in groups:
            lane_vars = [written_by.get(opid) for opid in group.lanes]
            if None in lane_vars:
                continue
            names = tuple(lane_vars)  # type: ignore[arg-type]
            if len(set(names)) != len(names):
                continue
            var_set = VectorVarSet((block_name, group.gid), names)
            for lane, var in enumerate(names):
                result[var] = (var_set, lane)
    return result


@dataclass
class SimdLowering(ScalarLowering):
    """Block lowering in the presence of SIMD groups."""

    groups: GroupSet = field(default_factory=lambda: GroupSet(""))
    vector_vars: dict[str, tuple[VectorVarSet, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        self._lane_of: dict[int, tuple[SIMDGroup, int]] = {}
        self._trigger: dict[int, SIMDGroup] = {}
        for group in self.groups:
            positions = [self.block.position(opid) for opid in group.lanes]
            self._trigger[max(positions)] = group
            for lane, opid in enumerate(group.lanes):
                self._lane_of[opid] = (group, lane)
        #: group id -> machine id of its result vector.
        self._vec_mid: dict[int, int | None] = {}
        #: vector-var-set key -> current vector machine id (None=live-in).
        self._vvs_mid: dict[tuple[str, int], int | None] = {}
        #: pending scalar writes into vector lanes: key -> lane -> mid.
        self._vvs_pending: dict[tuple[str, int], dict[int, int | None]] = {}
        #: extract cache for scalar consumers of grouped lanes.
        self._extracts: dict[int, int | None] = {}
        #: READVARs of vector-resident vars, resolved lazily by fetch().
        self._pending_vec_read: dict[int, tuple[tuple[str, int], int]] = {}
        #: variables whose current value sits in a vector register.
        self._var_in_vector: dict[str, tuple[tuple[str, int], int]] = {}
        self._vvs_by_key: dict[tuple[str, int], VectorVarSet] = {}
        for var, (var_set, lane) in self.vector_vars.items():
            self._var_in_vector[var] = (var_set.key, lane)
            self._vvs_by_key[var_set.key] = var_set

    # ------------------------------------------------------------------
    def lower(self) -> MachineBlock:
        for position, op in enumerate(self.block.ops):
            if op.opid in self._lane_of:
                group = self._trigger.get(position)
                if group is not None:
                    self._emit_group(group)
                continue
            self.lower_op(op)
        self._flush_pending_packs()
        return self.machine

    # ------------------------------------------------------------------
    # Scalar-side integration
    # ------------------------------------------------------------------
    def fetch(self, opid: int) -> int | None:
        """Scalar value of an IR op, extracting from vectors on demand."""
        if opid in self._extracts:
            return self._extracts[opid]
        pending = self._pending_vec_read.get(opid)
        if pending is not None:
            key, _lane = pending
            vec = self._vvs_mid.get(key)
            mid = self._emit_extract(vec, f"read lane of {key[0]}:g{key[1]}")
            self._extracts[opid] = mid
            return mid
        lane_info = self._lane_of.get(opid)
        if lane_info is None:
            return self.value_mid[opid]
        group, _lane = lane_info
        vec = self._vec_mid.get(group.gid)
        mid = self._emit_extract(vec, f"lane of g{group.gid}")
        self._extracts[opid] = mid
        return mid

    def _emit_extract(self, vec: int | None, comment: str) -> int:
        preds = (vec,) if vec is not None else ()
        return self.machine.add(
            "ext", "alu", self.target.latency("alu"),
            preds=tuple(p for p in preds if p is not None),
            comment=comment,
        )

    def lower_op(self, op: Operation) -> None:
        if op.kind is OpKind.READVAR:
            var = op.var
            assert var is not None
            if var in self._var_in_vector and var not in self.var_mid:
                # Value lives in a vector register.  Vector consumers
                # use it in place (the vvs operand path); only scalar
                # consumers pay an extract, lazily via fetch().
                self._pending_vec_read[op.opid] = self._var_in_vector[var]
                self.anchor_mid[op.opid] = None
                return
            super().lower_op(op)
            return
        if op.kind is OpKind.WRITEVAR:
            var = op.var
            assert var is not None
            producer = op.operands[0]
            lane_info = self._lane_of.get(producer)
            if var in self._var_in_vector:
                key, lane = self._var_in_vector[var]
                if lane_info is not None and self.vector_vars[var][0].key == (
                    self.block.name, lane_info[0].gid
                ):
                    # Vector write-back: the whole set updates at once.
                    self._vvs_mid[key] = self._vec_mid.get(lane_info[0].gid)
                    self.value_mid[op.opid] = self._vvs_mid[key]
                    self.anchor_mid[op.opid] = None
                    return
                # Scalar write into a vector lane: defer a pack.
                mid = self.fetch(producer)
                self._vvs_pending.setdefault(key, {})[lane] = mid
                self.var_mid[var] = mid
                self.value_mid[op.opid] = mid
                self.anchor_mid[op.opid] = None
                return
            super().lower_op(op)
            return
        super().lower_op(op)

    def _flush_pending_packs(self) -> None:
        """Assemble vectors for lanes written scalarly in this block."""
        for key, lanes in sorted(self._vvs_pending.items()):
            size = self._vvs_by_key[key].size
            mids = [m for m in lanes.values() if m is not None]
            vec = self._emit_pack(mids, size, comment=f"pack {key[0]}:g{key[1]}")
            self._vvs_mid[key] = vec
        self._vvs_pending.clear()

    # ------------------------------------------------------------------
    # Group emission
    # ------------------------------------------------------------------
    def _group_order_preds(self, group: SIMDGroup) -> tuple[int, ...]:
        preds: list[int] = []
        for opid in group.lanes:
            preds.extend(self.order_preds(self.program.op(opid)))
        return tuple(dict.fromkeys(preds))

    def _emit_group(self, group: SIMDGroup) -> None:
        if group.kind is OpKind.LOAD:
            mid = self._emit_vector_load(group)
        elif group.kind is OpKind.STORE:
            mid = self._emit_vector_store(group)
        elif group.kind is OpKind.MUL:
            mid = self._emit_vector_mul(group)
        elif group.kind in _VECTOR_ALU:
            mid = self._emit_vector_alu(group)
        else:  # pragma: no cover - candidates filter kinds
            raise CodegenError(f"cannot SIMDize kind {group.kind}")
        self._vec_mid[group.gid] = mid
        for opid in group.lanes:
            self.anchor_mid[opid] = mid

    def _emit_vector_load(self, group: SIMDGroup) -> int | None:
        if all(
            is_loop_invariant_load(self.program, self.program.op(opid))
            for opid in group.lanes
        ):
            # The whole vector is loop-invariant: packed once in the
            # preheader, it is a live-in register here.
            return None
        stride = memory_lane_stride(self.program, group.lanes)
        order = self._group_order_preds(group)
        if stride == 1 or stride == -1:
            mid = self.machine.add(
                "vld", "mem", self.target.latency("mem"), preds=order,
                lanes=group.size, comment=self.program.op(group.lanes[0]).array or "",
            )
            if stride == -1:
                mid = self.machine.add(
                    "perm", "alu", self.target.latency("alu"), preds=(mid,),
                    lanes=group.size, comment="reverse lanes",
                )
            return mid
        loads = [
            self.machine.add(
                "ld", "mem", self.target.latency("mem"),
                preds=self.order_preds(self.program.op(opid)),
                origin=opid,
            )
            for opid in group.lanes
        ]
        return self._emit_pack(loads, group.size, comment="gather")

    def _emit_vector_store(self, group: SIMDGroup) -> int:
        vec = self._resolve_operand(group, 0)
        stride = memory_lane_stride(self.program, group.lanes)
        order = self._group_order_preds(group)
        preds = tuple(p for p in (vec,) if p is not None) + order
        if stride == 1:
            return self.machine.add(
                "vst", "mem", self.target.latency("mem"), preds=preds,
                lanes=group.size,
                comment=self.program.op(group.lanes[0]).array or "",
            )
        # Scatter: unpack and store lanes individually.
        lane_mids = self._emit_unpack(vec, group.size)
        last = -1
        for opid, lane_mid in zip(group.lanes, lane_mids):
            lane_preds = tuple(
                p for p in (lane_mid,) if p is not None
            ) + self.order_preds(self.program.op(opid))
            last = self.machine.add(
                "st", "mem", self.target.latency("mem"), preds=lane_preds,
                origin=opid,
            )
        return last

    def _emit_vector_mul(self, group: SIMDGroup) -> int:
        a = self._resolve_operand(group, 0)
        b = self._resolve_operand(group, 1)
        preds = tuple(p for p in (a, b) if p is not None)
        mul = self.machine.add(
            "vmul", "mul", self.target.latency("mul"), preds=preds,
            lanes=group.size,
        )
        deltas = []
        for opid in group.lanes:
            f_prod = sum(
                self.spec.consumption_fwl(opid, pos) for pos in (0, 1)
            )
            deltas.append(f_prod - self.spec.fwl(opid))
        return self._emit_lane_shifts(mul, deltas, group.size) or mul

    def _emit_vector_alu(self, group: SIMDGroup) -> int:
        op0 = self.program.op(group.lanes[0])
        operand_mids = []
        for pos in range(len(op0.operands)):
            operand_mids.append(self._resolve_operand(group, pos))
        preds = tuple(m for m in operand_mids if m is not None)
        return self.machine.add(
            _VECTOR_ALU[group.kind], "alu", self.target.latency("alu"),
            preds=preds, lanes=group.size,
        )

    # ------------------------------------------------------------------
    # Operand resolution (where pack/unpack costs appear)
    # ------------------------------------------------------------------
    def _operand_shift_amounts(self, group: SIMDGroup, pos: int) -> list[int]:
        """Per-lane alignment shifts at this operand edge (Fig. 2)."""
        shifts = []
        for opid in group.lanes:
            op = self.program.op(opid)
            producer = op.operands[pos]
            f_src = self.spec.fwl(producer)
            if op.kind is OpKind.MUL:
                f_dst = self.spec.consumption_fwl(opid, pos)
            else:
                f_dst = self.spec.fwl(opid)
            shifts.append(f_src - f_dst)
        return shifts

    def _resolve_operand(self, group: SIMDGroup, pos: int) -> int | None:
        producers = tuple(
            self.program.op(opid).operands[pos] for opid in group.lanes
        )
        shifts = self._operand_shift_amounts(group, pos)

        source = self.groups.producer_group(producers)
        if source is not None:
            vec = self._vec_mid.get(source.gid)
            return self._emit_lane_shifts(vec, shifts, group.size) or vec

        reversed_source = self.groups.producer_group(tuple(reversed(producers)))
        if reversed_source is not None:
            vec = self._vec_mid.get(reversed_source.gid)
            mid = self.machine.add(
                "perm", "alu", self.target.latency("alu"),
                preds=tuple(p for p in (vec,) if p is not None),
                lanes=group.size, comment="reverse lanes",
            )
            return self._emit_lane_shifts(mid, shifts, group.size) or mid

        vvs = self._match_vector_vars(producers)
        if vvs is not None:
            vec = self._vvs_mid.get(vvs)
            return self._emit_lane_shifts(vec, shifts, group.size) or vec

        # Loop-invariant operands (hoisted coefficient splats) are
        # packed once in the preheader: free per iteration.
        if all(self._invariant_producer(p) for p in producers):
            return None

        # Lane selection out of a single wider vector (halves, even/odd
        # de-interleave, ...): one permute/select op on sub-word ISAs,
        # whose registers are just differently-sliced 32-bit words.
        sliced = self._match_single_group_source(producers)
        if sliced is not None:
            vec = self._vec_mid.get(sliced.gid)
            mid = self.machine.add(
                "perm", "alu", self.target.latency("alu"),
                preds=tuple(p for p in (vec,) if p is not None),
                lanes=group.size,
                comment=f"select lanes of g{sliced.gid}",
            )
            return self._emit_lane_shifts(mid, shifts, group.size) or mid

        # General case: pack from scalars (with per-lane narrowing).
        lane_mids = []
        for producer, shift in zip(producers, shifts):
            mid = self.fetch(producer)
            mid = self.emit_shift(mid, shift, "lane narrow")
            lane_mids.append(mid)
        return self._emit_pack(
            [m for m in lane_mids if m is not None], group.size,
            comment="pack operands",
        )

    def _invariant_producer(self, opid: int) -> bool:
        op = self.program.op(opid)
        if op.kind is OpKind.CONST:
            return True
        return is_loop_invariant_load(self.program, op)

    def _match_single_group_source(
        self, producers: tuple[int, ...]
    ) -> SIMDGroup | None:
        """The single group supplying every producer lane, if any."""
        info = self.groups.group_of(producers[0])
        if info is None:
            return None
        group = info[0]
        for producer in producers[1:]:
            other = self.groups.group_of(producer)
            if other is None or other[0] is not group:
                return None
        return group

    def _match_vector_vars(
        self, producers: tuple[int, ...]
    ) -> tuple[str, int] | None:
        """Key of the vector-var set matching these READVAR producers."""
        key: tuple[str, int] | None = None
        for lane, producer in enumerate(producers):
            op = self.program.op(producer)
            if op.kind is not OpKind.READVAR:
                return None
            info = self.vector_vars.get(op.var or "")
            if info is None:
                return None
            var_set, var_lane = info
            if var_lane != lane or len(producers) != var_set.size:
                return None
            if key is None:
                key = var_set.key
            elif key != var_set.key:
                return None
        return key

    # ------------------------------------------------------------------
    # Pack / unpack / lane-shift primitives
    # ------------------------------------------------------------------
    def _emit_pack(
        self, lane_mids: list[int], size: int, comment: str = ""
    ) -> int | None:
        """Assemble a vector from scalar lanes: size-1 insert ops."""
        current: int | None = lane_mids[0] if lane_mids else None
        for step in range(1, size):
            preds = [current] if current is not None else []
            if step < len(lane_mids):
                preds.append(lane_mids[step])
            current = self.machine.add(
                "pack", "alu", self.target.latency("alu"),
                preds=tuple(p for p in preds if p is not None),
                lanes=size, comment=comment,
            )
        return current

    def _emit_unpack(self, vec: int | None, size: int) -> list[int | None]:
        """Scatter a vector into scalars: size-1 extract ops.

        The low lane is readable in place (no op), matching sub-word
        ISAs where the register *is* the low lane.
        """
        mids: list[int | None] = [vec]
        for _ in range(size - 1):
            mids.append(
                self.machine.add(
                    "unpk", "alu", self.target.latency("alu"),
                    preds=tuple(p for p in (vec,) if p is not None),
                    lanes=size,
                )
            )
        return mids

    def _emit_lane_shifts(
        self, vec: int | None, shifts: list[int], size: int
    ) -> int | None:
        """Apply per-lane shifts: free, one vector shift, or the
        unpack / scalar shifts / repack penalty of Fig. 2."""
        if all(s == 0 for s in shifts):
            return vec
        if len(set(shifts)) == 1:
            amount = shifts[0]
            name = "vshr" if amount > 0 else "vshl"
            return self.machine.add(
                name, "alu", self.target.shift_latency(amount),
                preds=tuple(p for p in (vec,) if p is not None),
                lanes=size, comment=f"by {abs(amount)}",
            )
        lane_mids = self._emit_unpack(vec, size)
        shifted: list[int] = []
        for mid, amount in zip(lane_mids, shifts):
            out = self.emit_shift(mid, amount, "lane scaling")
            if out is not None:
                shifted.append(out)
        return self._emit_pack(shifted, size, comment="repack after scaling")


def lower_simd_block(
    program: Program,
    block: BasicBlock,
    spec: FixedPointSpec,
    target: TargetModel,
    groups: GroupSet,
    vector_vars: dict[str, tuple[VectorVarSet, int]],
) -> MachineBlock:
    """Lower one block with its SIMD groups."""
    lowering = SimdLowering(
        program, block, spec, target,
        groups=groups, vector_vars=vector_vars,
    )
    return lowering.lower()


def lower_simd_program(
    program: Program,
    spec: FixedPointSpec,
    target: TargetModel,
    groups_by_block: dict[str, GroupSet],
) -> dict[str, MachineBlock]:
    """Lower every block of the program with SIMD groups applied."""
    vector_vars = collect_vector_vars(program, groups_by_block)
    lowered = {}
    for name, block in program.blocks.items():
        groups = groups_by_block.get(name) or GroupSet(name)
        lowered[name] = lower_simd_block(
            program, block, spec, target, groups, vector_vars
        )
    return lowered
