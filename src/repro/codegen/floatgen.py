"""Floating-point lowering.

Lowers blocks as single-precision float code — the reference the
paper's Fig. 6 compares against.  On targets with hardware floating
point (ST240) each arithmetic op is one pipelined FPU instruction; on
FPU-less targets (XENTIUM, VEX) every float operation expands into a
soft-float emulation call, modeled as a long-latency op on a single
serialized ``sfu`` unit — which is why fixed-point conversion buys the
paper's 15-45x there.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.ir.block import BasicBlock
from repro.ir.deps import build_dependence_graph
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.scheduler.machineop import MachineBlock
from repro.targets.model import TargetModel

__all__ = ["lower_float_block", "lower_float_program"]

_FLOAT_NAMES = {
    OpKind.ADD: "fadd",
    OpKind.SUB: "fsub",
    OpKind.MUL: "fmul",
}
#: Sign manipulations and comparisons are integer-cheap even in float
#: code paths (sign-bit flips, compare-select).
_CHEAP_ALU = {OpKind.NEG, OpKind.ABS, OpKind.MIN, OpKind.MAX}


def lower_float_block(
    program: Program, block: BasicBlock, target: TargetModel
) -> MachineBlock:
    """Lower one block as floating-point code."""
    machine = MachineBlock(block.name)
    deps = build_dependence_graph(block)
    value_mid: dict[int, int | None] = {}
    anchor_mid: dict[int, int | None] = {}
    var_mid: dict[str, int | None] = {}

    def order_preds(opid: int) -> tuple[int, ...]:
        preds = []
        for pred, _o, data in deps.graph.in_edges(opid, data=True):
            if data.get("dep") == "data":
                continue
            anchor = anchor_mid.get(pred)
            if anchor is not None:
                preds.append(anchor)
        return tuple(preds)

    for op in block.ops:
        kind = op.kind
        if kind is OpKind.CONST:
            value_mid[op.opid] = None
            anchor_mid[op.opid] = None
        elif kind is OpKind.READVAR:
            value_mid[op.opid] = var_mid.get(op.var)  # type: ignore[arg-type]
            anchor_mid[op.opid] = None
        elif kind is OpKind.WRITEVAR:
            mid = value_mid[op.operands[0]]
            var_mid[op.var] = mid  # type: ignore[index]
            value_mid[op.opid] = mid
            anchor_mid[op.opid] = None
        elif kind is OpKind.LOAD:
            mid = machine.add(
                "ld", "mem", target.latency("mem"),
                preds=order_preds(op.opid), origin=op.opid,
            )
            value_mid[op.opid] = mid
            anchor_mid[op.opid] = mid
        elif kind is OpKind.STORE:
            src = value_mid[op.operands[0]]
            preds = tuple(p for p in (src,) if p is not None)
            mid = machine.add(
                "st", "mem", target.latency("mem"),
                preds=preds + order_preds(op.opid), origin=op.opid,
            )
            value_mid[op.opid] = mid
            anchor_mid[op.opid] = mid
        elif kind in _FLOAT_NAMES:
            name = _FLOAT_NAMES[kind]
            operand_mids = tuple(
                m for m in (value_mid[p] for p in op.operands) if m is not None
            )
            if target.has_hw_float:
                # fsub shares the adder pipeline with fadd.
                latency = target.float_latencies.get(
                    name, target.float_latencies["fadd"]
                )
                mid = machine.add(
                    name, "mul", latency, preds=operand_mids, origin=op.opid,
                )
            else:
                mid = machine.add(
                    name, "sfu", target.softfloat_latency(name),
                    preds=operand_mids, origin=op.opid,
                )
            value_mid[op.opid] = mid
            anchor_mid[op.opid] = mid
        elif kind in _CHEAP_ALU:
            operand_mids = tuple(
                m for m in (value_mid[p] for p in op.operands) if m is not None
            )
            mid = machine.add(
                kind.value, "alu", target.latency("alu"),
                preds=operand_mids, origin=op.opid,
            )
            value_mid[op.opid] = mid
            anchor_mid[op.opid] = mid
        else:  # pragma: no cover - enum closed
            raise CodegenError(f"cannot float-lower kind {kind}")
    return machine


def lower_float_program(
    program: Program, target: TargetModel
) -> dict[str, MachineBlock]:
    """Lower every block as floating-point code."""
    return {
        name: lower_float_block(program, block, target)
        for name, block in program.blocks.items()
    }
