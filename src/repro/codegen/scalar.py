"""Scalar fixed-point lowering.

Translates an IR block into machine ops under a fixed-point spec,
following the same quantization discipline as the interpreters:
operand alignment shifts before adds, requantization shifts after
multiplies and before stores.  Register moves (variable reads/writes,
constants) cost nothing — their values live in registers / immediates.

The result of ``lower_scalar_program`` feeds the list scheduler, which
produces the baseline cycle counts of the paper's eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CodegenError
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.block import BasicBlock
from repro.ir.deps import build_dependence_graph, is_loop_invariant_load
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.scheduler.machineop import MachineBlock
from repro.targets.model import TargetModel

__all__ = ["ScalarLowering", "lower_scalar_block", "lower_scalar_program"]

#: Machine-op mnemonics per IR kind for the plain ALU cases.
_ALU_NAMES = {
    OpKind.ADD: "add",
    OpKind.SUB: "sub",
    OpKind.MIN: "min",
    OpKind.MAX: "max",
    OpKind.NEG: "neg",
    OpKind.ABS: "abs",
}


@dataclass
class ScalarLowering:
    """Shared lowering machinery for one block (scalar path).

    The SIMD lowering subclasses the operand-fetch behaviour; keeping
    the requantization helpers here guarantees both paths charge the
    same shifts for the same format conversions.
    """

    program: Program
    block: BasicBlock
    spec: FixedPointSpec
    target: TargetModel
    machine: MachineBlock = field(init=False)
    #: IR opid -> machine id of its value (None = free: live-in reg or imm).
    value_mid: dict[int, int | None] = field(default_factory=dict)
    #: IR opid -> machine id anchoring ordering deps (memory/scalar).
    anchor_mid: dict[int, int | None] = field(default_factory=dict)
    #: variable name -> machine id of its current in-block value.
    var_mid: dict[str, int | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.machine = MachineBlock(self.block.name)
        self.deps = build_dependence_graph(self.block)

    # ------------------------------------------------------------------
    # Helpers shared with the SIMD lowering
    # ------------------------------------------------------------------
    def order_preds(self, op: Operation) -> tuple[int, ...]:
        """Machine ids enforcing memory/scalar ordering for ``op``."""
        preds = []
        for pred, _opid, data in self.deps.graph.in_edges(op.opid, data=True):
            if data.get("dep") == "data":
                continue
            anchor = self.anchor_mid.get(pred)
            if anchor is not None:
                preds.append(anchor)
        return tuple(preds)

    def emit_shift(
        self, source: int | None, amount: int, comment: str
    ) -> int | None:
        """Requantization shift by ``amount`` bits (no-op when 0)."""
        if amount == 0:
            return source
        name = "shr" if amount > 0 else "shl"
        preds = (source,) if source is not None else ()
        return self.machine.add(
            name, "alu", self.target.shift_latency(amount),
            preds=tuple(p for p in preds if p is not None),
            comment=comment,
        )

    def fetch(self, opid: int) -> int | None:
        """Machine id of an IR value (hook point for the SIMD path)."""
        return self.value_mid[opid]

    # ------------------------------------------------------------------
    def lower(self) -> MachineBlock:
        for op in self.block.ops:
            self.lower_op(op)
        return self.machine

    def lower_op(self, op: Operation) -> None:
        kind = op.kind
        if kind is OpKind.CONST:
            self.value_mid[op.opid] = None  # immediate
            self.anchor_mid[op.opid] = None
        elif kind is OpKind.READVAR:
            self.value_mid[op.opid] = self.var_mid.get(op.var)  # type: ignore[arg-type]
            self.anchor_mid[op.opid] = None
        elif kind is OpKind.WRITEVAR:
            mid = self.fetch(op.operands[0])
            self.var_mid[op.var] = mid  # type: ignore[index]
            self.value_mid[op.opid] = mid
            self.anchor_mid[op.opid] = None
        elif kind is OpKind.LOAD:
            if is_loop_invariant_load(self.program, op):
                # Hoisted by LICM: lives in a register across the loop.
                self.value_mid[op.opid] = None
                self.anchor_mid[op.opid] = None
                return
            mid = self.machine.add(
                "ld", "mem", self.target.latency("mem"),
                preds=self.order_preds(op), origin=op.opid,
                comment=f"{op.array}",
            )
            self.value_mid[op.opid] = mid
            self.anchor_mid[op.opid] = mid
        elif kind is OpKind.STORE:
            self.lower_store(op)
        elif kind is OpKind.MUL:
            self.lower_mul(op)
        elif kind in _ALU_NAMES:
            self.lower_alu(op)
        else:  # pragma: no cover - enum closed
            raise CodegenError(f"cannot lower op kind {kind}")

    # ------------------------------------------------------------------
    def lower_store(self, op: Operation) -> None:
        producer = op.operands[0]
        delta = self.spec.fwl(producer) - self.spec.fwl(op.opid)
        mid = self.emit_shift(self.fetch(producer), delta, "store requant")
        preds = tuple(p for p in (mid,) if p is not None) + self.order_preds(op)
        store = self.machine.add(
            "st", "mem", self.target.latency("mem"), preds=preds,
            origin=op.opid, comment=f"{op.array}",
        )
        self.value_mid[op.opid] = store
        self.anchor_mid[op.opid] = store

    def lower_alu(self, op: Operation) -> None:
        node_fwl = self.spec.fwl(op.opid)
        operand_mids = []
        for producer in op.operands:
            delta = self.spec.fwl(producer) - node_fwl
            operand_mids.append(
                self.emit_shift(self.fetch(producer), delta, "align")
            )
        preds = tuple(m for m in operand_mids if m is not None)
        mid = self.machine.add(
            _ALU_NAMES[op.kind], "alu", self.target.latency("alu"),
            preds=preds, origin=op.opid,
        )
        self.value_mid[op.opid] = mid
        self.anchor_mid[op.opid] = mid

    def lower_mul(self, op: Operation) -> None:
        cons_fwls = []
        operand_mids = []
        for pos, producer in enumerate(op.operands):
            f_cons = self.spec.consumption_fwl(op.opid, pos)
            delta = self.spec.fwl(producer) - f_cons
            operand_mids.append(
                self.emit_shift(self.fetch(producer), delta, "narrow")
            )
            cons_fwls.append(f_cons)
        preds = tuple(m for m in operand_mids if m is not None)
        mul = self.machine.add(
            "mul", "mul", self.target.latency("mul"), preds=preds,
            origin=op.opid,
        )
        delta_out = (cons_fwls[0] + cons_fwls[1]) - self.spec.fwl(op.opid)
        mid = self.emit_shift(mul, delta_out, "mul requant")
        self.value_mid[op.opid] = mid
        self.anchor_mid[op.opid] = mul if mid is None else mid


def lower_scalar_block(
    program: Program,
    block: BasicBlock,
    spec: FixedPointSpec,
    target: TargetModel,
) -> MachineBlock:
    """Lower one block to scalar fixed-point machine ops."""
    return ScalarLowering(program, block, spec, target).lower()


def lower_scalar_program(
    program: Program,
    spec: FixedPointSpec,
    target: TargetModel,
) -> dict[str, MachineBlock]:
    """Lower every block of ``program`` (scalar fixed-point)."""
    return {
        name: lower_scalar_block(program, block, spec, target)
        for name, block in program.blocks.items()
    }
