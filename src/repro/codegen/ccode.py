"""C code emission — the flow's source-to-source back-end (paper §IV).

Two emitters:

``emit_fixed_point_c``
    Bit-exact scalar fixed-point C: integer mantissas, explicit
    requantization shifts, wrap/saturate helpers.  Follows the
    interpreter discipline operation for operation, so a compiled
    binary reproduces :class:`~repro.fixedpoint.fxpinterp.FixedPointInterpreter`
    mantissa-for-mantissa (asserted by the integration tests when a C
    compiler is available).  Optionally embeds pre-quantized stimulus
    and a ``main`` that prints output mantissas.

``emit_simd_c``
    Fixed-point C over the abstract SIMD macro API the paper's
    back-end targets ("implements the SIMD groups using an abstract C
    macros API"): ``V2ADD``/``V4MUL_SHR``/``V2PACK``/... with a
    portable per-lane fallback header, so the output is compilable
    anywhere and retargetable by swapping the macro implementations
    for processor intrinsics.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import CodegenError
from repro.fixedpoint.fxpinterp import FxpConfig
from repro.fixedpoint.quantize import OverflowMode, QuantMode, float_to_mantissa
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.block import BasicBlock
from repro.ir.index import AffineIndex
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program
from repro.ir.symbols import SymbolKind
from repro.slp.groups import GroupSet, SIMDGroup, memory_lane_stride

__all__ = ["emit_fixed_point_c", "emit_simd_c"]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _c_index(index: tuple[AffineIndex, ...], shape: tuple[int, ...]) -> str:
    """Row-major flat C index expression for an affine subscript."""
    parts = []
    stride = 1
    strides = []
    for extent in reversed(shape):
        strides.append(stride)
        stride *= extent
    strides.reverse()
    for ix, dim_stride in zip(index, strides):
        term = _c_affine(ix)
        parts.append(term if dim_stride == 1 else f"({term}) * {dim_stride}")
    return " + ".join(parts) if parts else "0"


def _c_affine(ix: AffineIndex) -> str:
    parts = []
    for var, coeff in ix.terms:
        if coeff == 1:
            parts.append(var)
        else:
            parts.append(f"{coeff} * {var}")
    if ix.const or not parts:
        parts.append(str(ix.const))
    return " + ".join(parts).replace("+ -", "- ")


_PRELUDE = """\
#include <stdint.h>
#include <stdio.h>

/* Requantize v from (f_to + d) to f_to fractional bits.  d < 0 widens
 * (exact); ROUND_MODE selects truncation (0) or round-half-up (1). */
static inline int64_t requant(int64_t v, int d, int round_mode) {
    if (d <= 0) return v << (-d);
    if (round_mode) return (v + ((int64_t)1 << (d - 1))) >> d;
    return v >> d;  /* arithmetic shift: two's complement truncation */
}

static inline int32_t fit_wrap(int64_t v, int wl) {
    uint64_t span = (uint64_t)1 << wl;
    uint64_t m = (uint64_t)v & (span - 1);
    if (m >= span >> 1) return (int32_t)((int64_t)m - (int64_t)span);
    return (int32_t)m;
}

static inline int32_t fit_sat(int64_t v, int wl) {
    int64_t hi = ((int64_t)1 << (wl - 1)) - 1;
    int64_t lo = -((int64_t)1 << (wl - 1));
    if (v > hi) return (int32_t)hi;
    if (v < lo) return (int32_t)lo;
    return (int32_t)v;
}
"""


def _fit_call(config: FxpConfig) -> str:
    if config.overflow is OverflowMode.WRAP:
        return "fit_wrap"
    if config.overflow is OverflowMode.SATURATE:
        return "fit_sat"
    raise CodegenError(
        "C emission supports wrap/saturate overflow only "
        f"(got {config.overflow})"
    )


def _round_flag(mode: QuantMode) -> str:
    return "1" if mode is QuantMode.ROUND else "0"


def _array_initializer(values: list[int], per_line: int = 8) -> str:
    lines = []
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[start:start + per_line])
        lines.append(f"    {chunk},")
    return "\n".join(lines)


def _declare_arrays(
    program: Program,
    spec: FixedPointSpec,
    config: FxpConfig,
    inputs: Mapping[str, np.ndarray] | None,
    lines: list[str],
) -> None:
    for decl in program.arrays.values():
        slot = spec.slotmap.slot_of_symbol(decl.name)
        fwl = spec.fwl(slot)
        size = decl.size
        if decl.kind is SymbolKind.COEFF:
            assert decl.values is not None
            mantissas = [
                float_to_mantissa(float(v), fwl, config.const_mode)
                for v in decl.values.flat
            ]
            lines.append(
                f"static const int32_t {decl.name}[{size}] = {{  /* Q fwl={fwl} */"
            )
            lines.append(_array_initializer(mantissas))
            lines.append("};")
        elif decl.kind is SymbolKind.INPUT and inputs is not None:
            data = np.asarray(inputs[decl.name], dtype=np.float64)
            mantissas = [
                float_to_mantissa(float(v), fwl, config.input_mode)
                for v in data.flat
            ]
            lines.append(
                f"static int32_t {decl.name}[{size}] = {{  /* Q fwl={fwl} */"
            )
            lines.append(_array_initializer(mantissas))
            lines.append("};")
        else:
            lines.append(
                f"static int32_t {decl.name}[{size}];  /* Q fwl={fwl} */"
            )
    for var in program.variables.values():
        slot = spec.slotmap.slot_of_symbol(var.name)
        mantissa = float_to_mantissa(var.init, spec.fwl(slot), config.const_mode)
        lines.append(f"static int32_t v_{var.name} = {mantissa};")


def _emit_structure(
    program: Program,
    emit_block,
    lines: list[str],
) -> None:
    def visit(items, depth: int) -> None:
        pad = "    " * depth
        for item in items:
            if isinstance(item, BlockRef):
                lines.append(f"{pad}/* block {item.name} */")
                emit_block(program.blocks[item.name], depth)
            elif isinstance(item, LoopNode):
                lines.append(
                    f"{pad}for (int {item.var} = 0; {item.var} < "
                    f"{item.trip}; {item.var}++) {{"
                )
                visit(item.body, depth + 1)
                lines.append(f"{pad}}}")

    visit(program.schedule, 1)


def _emit_main(program: Program, spec: FixedPointSpec, lines: list[str]) -> None:
    lines.append("")
    lines.append("int main(void) {")
    lines.append("    kernel();")
    for decl in program.output_arrays():
        lines.append(
            f"    for (int i = 0; i < {decl.size}; i++) "
            f'printf("%d\\n", {decl.name}[i]);'
        )
    lines.append("    return 0;")
    lines.append("}")


# ----------------------------------------------------------------------
# Scalar emitter
# ----------------------------------------------------------------------
def emit_fixed_point_c(
    program: Program,
    spec: FixedPointSpec,
    config: FxpConfig | None = None,
    inputs: Mapping[str, np.ndarray] | None = None,
    function_name: str = "kernel",
) -> str:
    """Emit bit-exact scalar fixed-point C for ``program``.

    With ``inputs`` supplied, stimulus is embedded pre-quantized and a
    ``main`` printing output mantissas (one per line) is appended — the
    form the compile-and-compare tests consume.
    """
    config = config or FxpConfig()
    fit = _fit_call(config)
    rq = _round_flag(config.quant_mode)
    lines: list[str] = [
        f"/* {program.name}: scalar fixed-point code generated by repro. */",
        _PRELUDE,
    ]
    _declare_arrays(program, spec, config, inputs, lines)
    lines.append("")
    lines.append(f"void {function_name}(void) {{")

    def emit_block(block: BasicBlock, depth: int) -> None:
        pad = "    " * depth
        for op in block.ops:
            lines.extend(
                f"{pad}{stmt}" for stmt in _scalar_statements(
                    program, spec, config, fit, rq, op
                )
            )

    _emit_structure(program, emit_block, lines)
    lines.append("}")
    if inputs is not None:
        _emit_main(program, spec, lines)
    return "\n".join(lines) + "\n"


def _scalar_statements(
    program: Program,
    spec: FixedPointSpec,
    config: FxpConfig,
    fit: str,
    rq: str,
    op: Operation,
) -> list[str]:
    kind = op.kind
    fwl = spec.fwl(op.opid)
    wl = spec.wl(op.opid)
    name = f"t{op.opid}"

    def operand(producer: int, target_fwl: int) -> str:
        delta = spec.fwl(producer) - target_fwl
        if delta == 0:
            return f"t{producer}"
        return f"requant(t{producer}, {delta}, {rq})"

    if kind is OpKind.CONST:
        mantissa = float_to_mantissa(float(op.value), fwl, config.const_mode)  # type: ignore[arg-type]
        return [f"int32_t {name} = {mantissa};  /* {op.value} @ fwl {fwl} */"]
    if kind is OpKind.LOAD:
        decl = program.arrays[op.array]  # type: ignore[index]
        index = _c_index(op.index or (), decl.shape)
        return [f"int32_t {name} = {op.array}[{index}];"]
    if kind is OpKind.STORE:
        decl = program.arrays[op.array]  # type: ignore[index]
        index = _c_index(op.index or (), decl.shape)
        value = operand(op.operands[0], fwl)
        return [f"{op.array}[{index}] = {fit}({value}, {wl});"]
    if kind is OpKind.READVAR:
        return [f"int32_t {name} = v_{op.var};"]
    if kind is OpKind.WRITEVAR:
        return [f"v_{op.var} = t{op.operands[0]};"]
    if kind is OpKind.MUL:
        f_a = spec.consumption_fwl(op.opid, 0)
        f_b = spec.consumption_fwl(op.opid, 1)
        a = operand(op.operands[0], f_a)
        b = operand(op.operands[1], f_b)
        delta = f_a + f_b - fwl
        return [
            f"int32_t {name} = {fit}(requant((int64_t){a} * {b}, "
            f"{delta}, {rq}), {wl});"
        ]
    if kind in (OpKind.ADD, OpKind.SUB, OpKind.MIN, OpKind.MAX):
        a = operand(op.operands[0], fwl)
        b = operand(op.operands[1], fwl)
        if kind is OpKind.ADD:
            expr = f"(int64_t){a} + {b}"
        elif kind is OpKind.SUB:
            expr = f"(int64_t){a} - {b}"
        else:
            fn = "<" if kind is OpKind.MIN else ">"
            return [
                f"int64_t a{op.opid} = {a}, b{op.opid} = {b};",
                f"int32_t {name} = {fit}(a{op.opid} {fn} b{op.opid} ? "
                f"a{op.opid} : b{op.opid}, {wl});",
            ]
        return [f"int32_t {name} = {fit}({expr}, {wl});"]
    if kind is OpKind.NEG:
        a = operand(op.operands[0], fwl)
        return [f"int32_t {name} = {fit}(-(int64_t){a}, {wl});"]
    if kind is OpKind.ABS:
        a = operand(op.operands[0], fwl)
        return [
            f"int64_t a{op.opid} = {a};",
            f"int32_t {name} = {fit}(a{op.opid} < 0 ? -a{op.opid} : "
            f"a{op.opid}, {wl});",
        ]
    raise CodegenError(f"cannot emit C for op kind {kind}")  # pragma: no cover


# ----------------------------------------------------------------------
# SIMD emitter (abstract macro API)
# ----------------------------------------------------------------------
_SIMD_HEADER = """\
/* Abstract SIMD macro API (paper Section IV).  The portable fallback
 * below implements 2x16 and 4x8 sub-word operations on a 32-bit word
 * with two's complement wrap lanes; a target back-end replaces these
 * with processor intrinsics (e.g. XENTIUM pack/add2, ST240 st220 ops).
 */
typedef uint32_t v32;

static inline v32 v2pack(int32_t hi, int32_t lo) {
    return ((uint32_t)(uint16_t)hi << 16) | (uint16_t)lo;
}
static inline int32_t v2lane(v32 v, int lane) {
    return (int16_t)(v >> (lane ? 16 : 0));
}
static inline v32 v2map(v32 a, v32 b, int op) {
    int32_t x0 = v2lane(a, 0), x1 = v2lane(a, 1);
    int32_t y0 = v2lane(b, 0), y1 = v2lane(b, 1);
    int32_t r0, r1;
    switch (op) {
        case 0: r0 = x0 + y0; r1 = x1 + y1; break;
        case 1: r0 = x0 - y0; r1 = x1 - y1; break;
        case 2: r0 = x0 * y0; r1 = x1 * y1; break;
        case 3: r0 = x0 < y0 ? x0 : y0; r1 = x1 < y1 ? x1 : y1; break;
        default: r0 = x0 > y0 ? x0 : y0; r1 = x1 > y1 ? x1 : y1; break;
    }
    return v2pack(r1, r0);
}
#define V2ADD(a, b) v2map((a), (b), 0)
#define V2SUB(a, b) v2map((a), (b), 1)
#define V2MUL(a, b) v2map((a), (b), 2)
#define V2MIN(a, b) v2map((a), (b), 3)
#define V2MAX(a, b) v2map((a), (b), 4)
#define V2PACK(hi, lo) v2pack((hi), (lo))
#define V2EXT(v, lane) v2lane((v), (lane))
static inline v32 v2shr(v32 v, int n) {
    return v2pack(v2lane(v, 1) >> n, v2lane(v, 0) >> n);
}
static inline v32 v2shl(v32 v, int n) {
    return v2pack(v2lane(v, 1) << n, v2lane(v, 0) << n);
}
#define V2SHR(v, n) v2shr((v), (n))
#define V2SHL(v, n) v2shl((v), (n))
#define V2LOAD(p) (*(const v32 *)(p))
#define V2STORE(p, v) (*(v32 *)(p) = (v))
"""


def emit_simd_c(
    program: Program,
    spec: FixedPointSpec,
    groups_by_block: dict[str, GroupSet],
    config: FxpConfig | None = None,
    function_name: str = "kernel_simd",
) -> str:
    """Emit fixed-point C with SIMD groups as abstract macro calls.

    Grouped operations render as ``V<N>...`` macro invocations over
    packed temporaries; ungrouped operations render exactly like the
    scalar emitter.  Memory layout note: vector loads/stores assume the
    16-bit storage the group word lengths imply — the emitted file is
    a faithful rendering of the back-end's output shape, compilable
    against the fallback header, and is primarily consumed by the
    structural tests and by humans.
    """
    config = config or FxpConfig()
    fit = _fit_call(config)
    rq = _round_flag(config.quant_mode)
    lines: list[str] = [
        f"/* {program.name}: SIMD fixed-point code (abstract macro API). */",
        _PRELUDE,
        _SIMD_HEADER,
    ]
    _declare_arrays(program, spec, config, None, lines)
    lines.append("")
    lines.append(f"void {function_name}(void) {{")

    def emit_block(block: BasicBlock, depth: int) -> None:
        pad = "    " * depth
        groups = groups_by_block.get(block.name) or GroupSet(block.name)
        for node in _emission_order(program, block, groups):
            if isinstance(node, SIMDGroup):
                statements = _group_statements(
                    program, spec, groups, node, rq
                )
            else:
                statements = _scalar_statements(
                    program, spec, config, fit, rq, node
                )
            lines.extend(f"{pad}{stmt}" for stmt in statements)

    _emit_structure(program, emit_block, lines)
    lines.append("}")
    return "\n".join(lines) + "\n"


def _emission_order(program, block, groups):
    """Topological C-statement order with groups as atomic nodes.

    Program order is not enough: a group's statements are emitted once
    for all lanes, so scalar consumers of an *early* lane must wait
    until the group (which also needs its *late* lanes' operands) has
    been placed.  Collapsing lanes into one node over the dependence
    graph and sorting topologically handles every case; group nodes
    are acyclic by SLP construction.
    """
    import networkx as nx

    from repro.ir.deps import build_dependence_graph

    deps = build_dependence_graph(block)

    def node_key(opid: int):
        info = groups.group_of(opid)
        if info is None:
            return ("s", opid)
        return ("g", info[0].gid)

    collapsed = nx.DiGraph()
    for op in block.ops:
        collapsed.add_node(node_key(op.opid))
    for src, dst in deps.graph.edges:
        a, b = node_key(src), node_key(dst)
        if a != b:
            collapsed.add_edge(a, b)
    order = nx.lexicographical_topological_sort(collapsed)
    by_gid = {g.gid: g for g in groups}
    return [
        by_gid[key[1]] if key[0] == "g" else program.op(key[1])
        for key in order
    ]


def _group_statements(program, spec, groups, group, rq) -> list[str]:
    n = group.size
    vec = f"vg{group.gid}"
    kind = group.kind
    stmts: list[str] = [f"/* group g{group.gid}: {kind.value} x{n} @ {group.wl}b */"]
    if kind is OpKind.LOAD:
        stride = memory_lane_stride(program, group.lanes)
        first = program.op(group.lanes[0])
        decl = program.arrays[first.array]
        index = _c_index(first.index or (), decl.shape)
        if stride == 1:
            stmts.append(f"v32 {vec} = V{n}LOAD(&{first.array}[{index}]);")
        else:
            args = ", ".join(
                f"{program.op(o).array}[{_c_index(program.op(o).index or (), decl.shape)}]"
                for o in reversed(group.lanes)
            )
            stmts.append(f"v32 {vec} = V{n}PACK({args});")
        return stmts
    if kind is OpKind.STORE:
        first = program.op(group.lanes[0])
        decl = program.arrays[first.array]
        index = _c_index(first.index or (), decl.shape)
        value = _vector_operand(program, spec, groups, group, 0, rq, stmts)
        stmts.append(f"V{n}STORE(&{first.array}[{index}], {value});")
        return stmts
    macro = {
        OpKind.ADD: "ADD", OpKind.SUB: "SUB", OpKind.MUL: "MUL",
        OpKind.MIN: "MIN", OpKind.MAX: "MAX",
    }.get(kind)
    if macro is None:
        raise CodegenError(f"cannot emit SIMD C for kind {kind}")
    arity = len(program.op(group.lanes[0]).operands)
    operands = [
        _vector_operand(program, spec, groups, group, pos, rq, stmts)
        for pos in range(arity)
    ]
    stmts.append(f"v32 {vec} = V{n}{macro}({', '.join(operands)});")
    if kind is OpKind.MUL:
        deltas = {
            spec.consumption_fwl(o, 0) + spec.consumption_fwl(o, 1)
            - spec.fwl(o)
            for o in group.lanes
        }
        if deltas != {0}:
            amount = max(deltas)
            stmts.append(f"{vec} = V{n}SHR({vec}, {amount});")
    # Expose lanes for scalar consumers.
    for lane, opid in enumerate(group.lanes):
        stmts.append(f"int32_t t{opid} = V{n}EXT({vec}, {lane});")
    return stmts


def _vector_operand(program, spec, groups, group, pos, rq, stmts) -> str:
    producers = tuple(
        program.op(opid).operands[pos] for opid in group.lanes
    )
    source = groups.producer_group(producers)
    shifts = set()
    for opid in group.lanes:
        op = program.op(opid)
        producer = op.operands[pos]
        f_dst = (
            spec.consumption_fwl(opid, pos)
            if op.kind is OpKind.MUL else spec.fwl(opid)
        )
        shifts.add(spec.fwl(producer) - f_dst)
    if source is not None:
        expr = f"vg{source.gid}"
    else:
        args = ", ".join(f"t{p}" for p in reversed(producers))
        expr = f"V{group.size}PACK({args})"
    if shifts == {0}:
        return expr
    amount = max(shifts)
    if amount > 0:
        return f"V{group.size}SHR({expr}, {amount})"
    return f"V{group.size}SHL({expr}, {-amount})"
