"""Target lookup by name."""

from __future__ import annotations

from typing import Callable

from repro.errors import TargetError, unknown_name_error
from repro.targets.model import TargetModel
from repro.targets.st240 import st240
from repro.targets.vex import vex
from repro.targets.xentium import xentium

__all__ = ["get_target", "available_targets", "register_target"]

_FACTORIES: dict[str, Callable[[], TargetModel]] = {
    "xentium": xentium,
    "st240": st240,
    "vex-1": lambda: vex(1),
    "vex-4": lambda: vex(4),
}


def get_target(name: str) -> TargetModel:
    """Build a target model by name (case-insensitive)."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise unknown_name_error(
            TargetError, "target", name, available_targets()
        )
    return factory()


def available_targets() -> list[str]:
    """Names accepted by :func:`get_target`."""
    return sorted(_FACTORIES)


def register_target(name: str, factory: Callable[[], TargetModel]) -> None:
    """Register a custom target (used by examples and tests)."""
    _FACTORIES[name.lower()] = factory
