"""Recore XENTIUM target model.

An ultra-low-power 32-bit VLIW DSP core (paper Section V-B): 12-issue,
2x16-bit integer SIMD, no floating-point hardware.  Unit counts follow
the Xentium datapath (two MAC-capable units, one load/store path, the
rest ALU-class); they are calibration parameters of the cycle model,
not claims about the RTL — see DESIGN.md Section 6.
"""

from __future__ import annotations

from repro.targets.model import TargetModel

__all__ = ["xentium"]


def xentium() -> TargetModel:
    """The XENTIUM model used throughout the experiments."""
    return TargetModel(
        name="xentium",
        issue_width=12,
        scalar_wl=32,
        simd_widths=(16,),
        units={"alu": 6, "mul": 2, "mem": 1, "sfu": 1},
        latencies={"alu": 1, "mul": 2, "mem": 2},
        has_hw_float=False,
        softfloat_cycles={"fadd": 38, "fsub": 40, "fmul": 27},
        barrel_shifter=True,
        branch_penalty=1,
    )
