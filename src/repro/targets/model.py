"""Processor target models.

A :class:`TargetModel` captures everything the optimizer and the cycle
model need to know about a processor: VLIW issue width, functional
unit counts, operation latencies, which sub-word SIMD lane widths
exist, pack/unpack costs and floating-point support.  The four targets
of the paper (XENTIUM, ST240, VEX-1, VEX-4) are built on this class;
users can define their own (see ``examples/custom_target.py``).

Unit classes
------------
``alu``   add/sub/min/max/abs/shift/pack/unpack/permute/extract/insert
``mul``   multiplies (and hardware FP, which shares the multiplier
          pipelines on the modeled cores)
``mem``   loads and stores
``sfu``   the soft-float "unit": a serialized stand-in for the emulation
          call sequence on FPU-less cores (non-pipelined on purpose)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TargetError

__all__ = ["TargetModel"]


@dataclass(frozen=True)
class TargetModel:
    """Static description of a VLIW SIMD target."""

    name: str
    issue_width: int
    #: Native scalar word length (= the SIMD datapath width), bits.
    scalar_wl: int = 32
    #: Sub-word SIMD lane widths supported, widest first (e.g. (16, 8)).
    simd_widths: tuple[int, ...] = (16,)
    #: Functional unit counts by class.
    units: dict[str, int] = field(
        default_factory=lambda: {"alu": 4, "mul": 2, "mem": 2, "sfu": 1}
    )
    #: Latency (cycles) by unit class; SIMD ops inherit their class.
    latencies: dict[str, int] = field(
        default_factory=lambda: {"alu": 1, "mul": 2, "mem": 2}
    )
    #: Unit classes that are busy for their full latency (not pipelined).
    non_pipelined: frozenset = frozenset({"sfu"})
    #: Hardware floating point support (ST240: yes, others: no).
    has_hw_float: bool = False
    #: Latencies of hardware float add/mul (on the ``mul`` unit class).
    float_latencies: dict[str, int] = field(
        default_factory=lambda: {"fadd": 3, "fmul": 3}
    )
    #: Per-call cycle costs of soft-float emulation (FPU-less cores).
    softfloat_cycles: dict[str, int] = field(
        default_factory=lambda: {"fadd": 38, "fsub": 40, "fmul": 27}
    )
    #: Barrel shifter: any-amount shifts in one cycle.  Without one, a
    #: shift by k costs k cycles (shift-register style).
    barrel_shifter: bool = True
    #: Cycles of taken-branch overhead charged per loop iteration.
    branch_penalty: int = 1

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise TargetError(f"{self.name}: issue width must be >= 1")
        for width in self.simd_widths:
            if width >= self.scalar_wl or self.scalar_wl % width:
                raise TargetError(
                    f"{self.name}: SIMD width {width} does not subdivide "
                    f"the {self.scalar_wl}-bit datapath"
                )
        for unit in ("alu", "mul", "mem"):
            if self.units.get(unit, 0) < 1:
                raise TargetError(f"{self.name}: needs at least one {unit!r} unit")

    # ------------------------------------------------------------------
    # Word-length queries
    # ------------------------------------------------------------------
    @property
    def supported_wls(self) -> tuple[int, ...]:
        """All word lengths an operation can be implemented at."""
        return (self.scalar_wl,) + tuple(self.simd_widths)

    @property
    def max_wl(self) -> int:
        """Maximum supported word length (the Fig. 1a initialization)."""
        return self.scalar_wl

    def lanes_for_wl(self, wl: int) -> int:
        """SIMD lanes available at word length ``wl`` (1 = scalar only)."""
        if wl in self.simd_widths:
            return self.scalar_wl // wl
        return 1

    def group_wl(self, n_elements: int) -> int | None:
        """Paper eq. (1): max supported ``m`` with ``m*Nelem <= SIMD size``.

        Returns ``None`` when no supported sub-word width can hold a
        group of ``n_elements`` lanes (the group cannot be SIMDized).
        """
        candidates = [
            wl for wl in self.simd_widths
            if wl * n_elements <= self.scalar_wl
        ]
        return max(candidates) if candidates else None

    @property
    def max_group_size(self) -> int:
        """Largest SIMD group the target can hold in one word."""
        if not self.simd_widths:
            return 1
        return self.scalar_wl // min(self.simd_widths)

    # ------------------------------------------------------------------
    # Cost queries
    # ------------------------------------------------------------------
    def latency(self, unit: str) -> int:
        found = self.latencies.get(unit)
        if found is None:
            raise TargetError(f"{self.name}: no latency for unit {unit!r}")
        return found

    def shift_latency(self, amount: int) -> int:
        """Latency of a shift by a compile-time constant ``amount``."""
        if self.barrel_shifter or abs(amount) <= 1:
            return self.latencies.get("alu", 1)
        return abs(amount)

    def pack_ops(self, lanes: int) -> int:
        """ALU ops to assemble a ``lanes``-wide vector from scalars."""
        return max(0, lanes - 1)

    def unpack_ops(self, lanes: int) -> int:
        """ALU ops to scatter a vector back into scalars."""
        return max(0, lanes - 1)

    def loop_overhead_cycles(self) -> int:
        """Per-iteration loop maintenance: induction + taken branch.

        The induction update shares issue slots; on multi-issue
        machines it is absorbed into free slots and only the branch
        penalty remains, while a single-issue machine pays it in full.
        """
        induction = 1 if self.issue_width == 1 else 0
        return self.branch_penalty + induction

    def softfloat_latency(self, op: str) -> int:
        found = self.softfloat_cycles.get(op)
        if found is None:
            raise TargetError(f"{self.name}: no soft-float cost for {op!r}")
        return found

    def describe(self) -> str:
        simd = ", ".join(
            f"{self.scalar_wl // w}x{w}" for w in self.simd_widths
        )
        fp = "HW float" if self.has_hw_float else "soft float"
        return (
            f"{self.name}: {self.issue_width}-issue VLIW, "
            f"{self.scalar_wl}-bit, SIMD [{simd}], {fp}"
        )
