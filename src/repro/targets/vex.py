"""VEX target models.

VEX is HP's parameterizable VLIW architecture (paper Section V-B); the
paper instantiates it at issue widths 1 and 4 and adds 16-bit *and*
8-bit integer SIMD extensions — the only targets here that can form
4-element groups (4x8), which is what exercises the group-widening
loop of Fig. 1a beyond pairs.  VEX has no FPU; float code is emulated.
"""

from __future__ import annotations

from repro.errors import TargetError
from repro.targets.model import TargetModel

__all__ = ["vex"]


def vex(issue_width: int) -> TargetModel:
    """A VEX cluster at the given issue width (paper uses 1 and 4)."""
    if issue_width < 1:
        raise TargetError(f"VEX issue width must be >= 1, got {issue_width}")
    units = {
        "alu": max(1, issue_width),
        "mul": max(1, issue_width // 2),
        "mem": max(1, issue_width // 4),
        "sfu": 1,
    }
    return TargetModel(
        name=f"vex-{issue_width}",
        issue_width=issue_width,
        scalar_wl=32,
        simd_widths=(16, 8),
        units=units,
        latencies={"alu": 1, "mul": 2, "mem": 2},
        has_hw_float=False,
        softfloat_cycles={"fadd": 35, "fsub": 37, "fmul": 30},
        barrel_shifter=True,
        branch_penalty=1,
    )
