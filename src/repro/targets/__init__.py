"""Embedded VLIW SIMD processor models."""

from repro.targets.model import TargetModel
from repro.targets.registry import available_targets, get_target, register_target
from repro.targets.st240 import st240
from repro.targets.vex import vex
from repro.targets.xentium import xentium

__all__ = [
    "TargetModel",
    "available_targets",
    "get_target",
    "register_target",
    "st240",
    "vex",
    "xentium",
]
