"""ST Microelectronics ST240 target model.

A 4-issue VLIW media processor of the ST200 family (paper Section
V-B): 32-bit, 2x16-bit integer SIMD, and — unlike the other targets —
hardware single-precision floating point, which is why the paper's
Fig. 6 float-versus-fixed speedups stay near 1x on it.
"""

from __future__ import annotations

from repro.targets.model import TargetModel

__all__ = ["st240"]


def st240() -> TargetModel:
    """The ST240 model used throughout the experiments."""
    return TargetModel(
        name="st240",
        issue_width=4,
        scalar_wl=32,
        simd_widths=(16,),
        units={"alu": 4, "mul": 2, "mem": 1, "sfu": 1},
        latencies={"alu": 1, "mul": 3, "mem": 3},
        has_hw_float=True,
        float_latencies={"fadd": 3, "fmul": 3},
        barrel_shifter=True,
        branch_penalty=1,
    )
