"""Accuracy metrics and quantization-noise moments.

The accuracy constraint of the paper is the maximum allowed *noise
power* of the quantization error at the system output, expressed in dB
(``P_dB = 10 log10 E[e^2]``).  This module provides the dB plumbing and
the discrete uniform-noise moments of a quantization from ``f_from`` to
``f_to`` fractional bits (Menard & Sentieys' source model):

truncation
    error uniform over ``{-(q_to - q_from), ..., 0}`` stepping
    ``q_from``: mean ``-(q_to - q_from)/2``, variance
    ``(q_to^2 - q_from^2)/12``;
rounding
    mean ``+q_from/2`` (the half-up bias of the discrete grid),
    same variance.

``q = 2**-f``; a continuous source (``f_from = inf``) has ``q_from=0``.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.fixedpoint.quantize import QuantMode
from repro.utils import power_to_db, db_to_power

__all__ = [
    "quant_noise_moments",
    "measured_noise_power",
    "noise_power_db",
    "sqnr_db",
    "power_to_db",
    "db_to_power",
]


def quant_noise_moments(
    f_from: float, f_to: float, mode: QuantMode
) -> tuple[float, float]:
    """(mean, variance) of the error of quantizing ``f_from -> f_to``.

    Returns ``(0, 0)`` when no bits are discarded (``f_to >= f_from``).
    ``f_from`` may be ``math.inf`` for continuous-amplitude sources.
    """
    if f_to >= f_from:
        return 0.0, 0.0
    q_to = 2.0 ** -f_to
    q_from = 0.0 if math.isinf(f_from) else 2.0 ** -f_from
    variance = (q_to * q_to - q_from * q_from) / 12.0
    if mode is QuantMode.ROUND:
        mean = q_from / 2.0
    else:
        mean = -(q_to - q_from) / 2.0
    return mean, variance


def measured_noise_power(
    reference: Mapping[str, np.ndarray],
    measured: Mapping[str, np.ndarray],
    discard: int = 0,
) -> float:
    """Mean squared error between two sets of output arrays.

    ``discard`` drops that many leading elements of every (flattened)
    output before averaging — warm-up transients of recursive filters
    are not representative of steady-state noise.
    """
    total = 0.0
    count = 0
    for name, ref in reference.items():
        got = np.asarray(measured[name], dtype=np.float64).ravel()[discard:]
        want = np.asarray(ref, dtype=np.float64).ravel()[discard:]
        err = got - want
        total += float(np.dot(err, err))
        count += err.size
    if count == 0:
        return 0.0
    return total / count


def noise_power_db(
    reference: Mapping[str, np.ndarray],
    measured: Mapping[str, np.ndarray],
    discard: int = 0,
) -> float:
    """Measured noise power in dB."""
    return power_to_db(measured_noise_power(reference, measured, discard))


def sqnr_db(
    reference: Mapping[str, np.ndarray],
    measured: Mapping[str, np.ndarray],
    discard: int = 0,
) -> float:
    """Signal-to-quantization-noise ratio in dB."""
    signal = 0.0
    count = 0
    for ref in reference.values():
        flat = np.asarray(ref, dtype=np.float64).ravel()[discard:]
        signal += float(np.dot(flat, flat))
        count += flat.size
    noise = measured_noise_power(reference, measured, discard)
    if noise <= 0.0:
        return float("inf")
    if count:
        signal /= count
    return power_to_db(signal) - power_to_db(noise)
