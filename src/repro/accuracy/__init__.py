"""Accuracy-evaluation substrate.

Quantization-noise metrics, static site enumeration, adjoint-based
gain extraction, the closed-form analytical evaluator (``EVALACC``)
and the bit-accurate simulation evaluator used for validation.
"""

from repro.accuracy.adjoint import CoeffEntry, NoiseGains, extract_gains
from repro.accuracy.analytical import AccuracyModel, build_accuracy_model
from repro.accuracy.metrics import (
    measured_noise_power,
    noise_power_db,
    quant_noise_moments,
    sqnr_db,
)
from repro.accuracy.simulation import (
    FormatAccuracyEvaluator,
    SimulationAccuracyEvaluator,
)
from repro.accuracy.sites import Site, SiteKind, enumerate_sites

__all__ = [
    "AccuracyModel",
    "CoeffEntry",
    "FormatAccuracyEvaluator",
    "NoiseGains",
    "SimulationAccuracyEvaluator",
    "Site",
    "SiteKind",
    "build_accuracy_model",
    "enumerate_sites",
    "extract_gains",
    "measured_noise_power",
    "noise_power_db",
    "quant_noise_moments",
    "sqnr_db",
]
