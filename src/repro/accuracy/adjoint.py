"""Noise-gain extraction by reverse-mode differentiation.

The analytical accuracy model needs, for every quantization site, the
gain with which the site's error reaches the program output:
``K2 = sum_d h[d]^2`` (incoherent, white part) and ``K1 = sum_d h[d]``
(coherent, bias part), where ``h`` is the impulse response from the
site to the output.

These are extracted *once per program*: run the float interpreter with
a recorded :class:`~repro.ir.interp.ExecutionTrace`, then back-propagate
adjoints from a few steady-state output instances.  Because each
executed instance of a site injects an independent error realization,
``K2`` is the sum of squared per-instance adjoints, while values that
are quantized once and reused (array cells, compile-time constants)
accumulate their adjoints coherently through the trace's def-use links
— reverse mode gets all of this right with no special cases.

For constants/coefficients the error is deterministic, not white, so
instead of moments we extract the sensitivity covariance
``C[i][j] = E_o[g_i g_j]`` over reference outputs; the evaluator then
adds the exact deterministic power ``dc' C dc`` for the current
coefficient quantization residues ``dc``.

This is the first-order (Taylor/perturbation) model of the accuracy
literature the paper builds on; for linear kernels it is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AccuracyError
from repro.fixedpoint.spec import SlotMap
from repro.ir.interp import ExecutionTrace, Interpreter
from repro.ir.optypes import OpKind
from repro.ir.program import Program

__all__ = ["CoeffEntry", "NoiseGains", "extract_gains"]


@dataclass(frozen=True)
class CoeffEntry:
    """One deterministic (constant) value tracked for sensitivity."""

    slot: int
    value: float
    label: str


@dataclass
class NoiseGains:
    """Per-site noise gains to the program output."""

    node_k2: dict[int, float] = field(default_factory=dict)
    node_k1: dict[int, float] = field(default_factory=dict)
    edge_k2: dict[tuple[int, int], float] = field(default_factory=dict)
    edge_k1: dict[tuple[int, int], float] = field(default_factory=dict)
    input_k2: dict[str, float] = field(default_factory=dict)
    input_k1: dict[str, float] = field(default_factory=dict)
    coeff_entries: list[CoeffEntry] = field(default_factory=list)
    coeff_cov: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    n_ref_outputs: int = 0

    def gain(self, gain_key: tuple) -> tuple[float, float]:
        """(K2, K1) for a site's ``gain_key``."""
        kind = gain_key[0]
        if kind == "node":
            return (self.node_k2.get(gain_key[1], 0.0),
                    self.node_k1.get(gain_key[1], 0.0))
        if kind == "edge":
            key = (gain_key[1], gain_key[2])
            return self.edge_k2.get(key, 0.0), self.edge_k1.get(key, 0.0)
        if kind == "input":
            return (self.input_k2.get(gain_key[1], 0.0),
                    self.input_k1.get(gain_key[1], 0.0))
        raise AccuracyError(f"unknown gain key {gain_key!r}")


def _random_inputs(program: Program, rng: np.random.Generator) -> dict[str, np.ndarray]:
    inputs = {}
    for decl in program.input_arrays():
        lo, hi = decl.value_range  # type: ignore[misc]
        inputs[decl.name] = rng.uniform(lo, hi, size=decl.shape)
    return inputs


def _backpropagate(trace: ExecutionTrace, ref: int) -> np.ndarray:
    """Adjoint of every instance w.r.t. the value of instance ``ref``."""
    adj = np.zeros(trace.n_instances, dtype=np.float64)
    adj[ref] = 1.0
    operands = trace.operands
    partials = trace.partials
    for i in range(ref, -1, -1):
        a = adj[i]
        if a == 0.0:
            continue
        for j, p in zip(operands[i], partials[i]):
            adj[j] += a * p
    return adj


def extract_gains(
    program: Program,
    slotmap: SlotMap | None = None,
    n_ref_outputs: int = 4,
    seed: int = 90210,
) -> NoiseGains:
    """Extract noise gains for ``program``.

    ``n_ref_outputs`` steady-state output instances (the last ones
    produced) are back-propagated and the per-site gains averaged; for
    time-invariant kernels they agree, and averaging suppresses edge
    effects of finite analysis length.
    """
    slotmap = slotmap or SlotMap(program)
    rng = np.random.default_rng(seed)
    trace = ExecutionTrace()
    interpreter = Interpreter(program)
    interpreter.run(_random_inputs(program, rng), trace=trace)

    if not trace.output_instances:
        raise AccuracyError(
            f"program {program.name!r} produced no output stores"
        )
    refs = trace.output_instances[-n_ref_outputs:]

    # Map pseudo static ids back to their unique creating instance.
    pseudo_inst: dict[int, int] = {}
    for inst, static in enumerate(trace.static):
        if static >= trace.first_pseudo_id:
            pseudo_inst[static] = inst

    coeff_entries, coeff_cells = _collect_coeff_entries(
        program, slotmap, trace, pseudo_inst
    )
    input_cells = _collect_input_cells(program, trace, pseudo_inst)

    const_ops = [
        op.opid for op in program.all_ops() if op.kind is OpKind.CONST
    ]

    gains = NoiseGains(n_ref_outputs=len(refs))
    n_coeff = len(coeff_entries)
    cov = np.zeros((n_coeff, n_coeff), dtype=np.float64)

    node_k2: dict[int, float] = {}
    node_k1: dict[int, float] = {}
    edge_k2: dict[tuple[int, int], float] = {}
    edge_k1: dict[tuple[int, int], float] = {}
    input_k2: dict[str, float] = {}
    input_k1: dict[str, float] = {}

    for ref in refs:
        adj = _backpropagate(trace, ref)
        _accumulate_instance_gains(
            trace, adj, ref, node_k2, node_k1, edge_k2, edge_k1
        )
        for name, cells in input_cells.items():
            cell_adj = adj[cells]
            input_k2[name] = input_k2.get(name, 0.0) + float(
                np.dot(cell_adj, cell_adj)
            )
            input_k1[name] = input_k1.get(name, 0.0) + float(cell_adj.sum())
        g = np.zeros(n_coeff, dtype=np.float64)
        for idx, cell in enumerate(coeff_cells):
            if isinstance(cell, int):  # static CONST op: coherent sum
                g[idx] = _coherent_static_adjoint(trace, adj, cell, ref)
            else:  # pseudo instance id of a coefficient array cell
                g[idx] = adj[cell[1]]
        cov += np.outer(g, g)

    scale = 1.0 / len(refs)
    gains.node_k2 = {k: v * scale for k, v in node_k2.items()}
    gains.node_k1 = {k: v * scale for k, v in node_k1.items()}
    gains.edge_k2 = {k: v * scale for k, v in edge_k2.items()}
    gains.edge_k1 = {k: v * scale for k, v in edge_k1.items()}
    gains.input_k2 = {k: v * scale for k, v in input_k2.items()}
    gains.input_k1 = {k: v * scale for k, v in input_k1.items()}
    gains.coeff_entries = coeff_entries
    gains.coeff_cov = cov * scale
    # Coherent CONST gains were already folded into coeff_cov; drop the
    # spurious per-instance const aggregates (constants are not white
    # noise sources).
    for opid in const_ops:
        gains.node_k2.pop(opid, None)
        gains.node_k1.pop(opid, None)
    return gains


def _accumulate_instance_gains(
    trace: ExecutionTrace,
    adj: np.ndarray,
    ref: int,
    node_k2: dict[int, float],
    node_k1: dict[int, float],
    edge_k2: dict[tuple[int, int], float],
    edge_k1: dict[tuple[int, int], float],
) -> None:
    static = trace.static
    operands = trace.operands
    partials = trace.partials
    first_pseudo = trace.first_pseudo_id
    for i in range(ref + 1):
        a = adj[i]
        if a == 0.0:
            continue
        s = static[i]
        if s < 0 or s >= first_pseudo:
            continue
        node_k2[s] = node_k2.get(s, 0.0) + a * a
        node_k1[s] = node_k1.get(s, 0.0) + a
        parts = partials[i]
        if not parts:
            continue
        for pos in range(len(parts)):
            g = a * parts[pos]
            key = (s, pos)
            edge_k2[key] = edge_k2.get(key, 0.0) + g * g
            edge_k1[key] = edge_k1.get(key, 0.0) + g


def _coherent_static_adjoint(
    trace: ExecutionTrace, adj: np.ndarray, opid: int, ref: int
) -> float:
    """Coherent adjoint sum over all instances of a static op."""
    static = trace.static
    total = 0.0
    for i in range(ref + 1):
        if static[i] == opid and adj[i] != 0.0:
            total += adj[i]
    return total


def _collect_coeff_entries(
    program: Program,
    slotmap: SlotMap,
    trace: ExecutionTrace,
    pseudo_inst: dict[int, int],
) -> tuple[list[CoeffEntry], list]:
    """Deterministic values to track: coeff cells, CONSTs, var inits.

    Returns parallel lists of entries and of "where to read the
    adjoint": either ``("cell", instance_id)`` for one-time pseudo
    sources or the static opid (int) for CONST ops whose instances must
    be summed coherently.
    """
    entries: list[CoeffEntry] = []
    cells: list = []
    for decl in program.coeff_arrays():
        slot = slotmap.slot_of_symbol(decl.name)
        assert decl.values is not None
        for flat, value in enumerate(decl.values.flat):
            pseudo = trace.cell_sources.get((decl.name, flat))
            if pseudo is None:
                continue  # cell never read
            entries.append(CoeffEntry(slot, float(value), f"{decl.name}[{flat}]"))
            cells.append(("cell", pseudo_inst[pseudo]))
    for op in program.all_ops():
        if op.kind is OpKind.CONST:
            entries.append(CoeffEntry(op.opid, float(op.value), f"%{op.opid}"))  # type: ignore[arg-type]
            cells.append(op.opid)
    for var in program.variables.values():
        if var.init != 0.0:
            pseudo = trace.cell_sources.get(("$" + var.name, 0))
            if pseudo is None:
                continue
            slot = slotmap.slot_of_symbol(var.name)
            entries.append(CoeffEntry(slot, var.init, f"${var.name}"))
            cells.append(("cell", pseudo_inst[pseudo]))
    return entries, cells


def _collect_input_cells(
    program: Program,
    trace: ExecutionTrace,
    pseudo_inst: dict[int, int],
) -> dict[str, np.ndarray]:
    """Instance ids of every input array cell's pseudo source."""
    result: dict[str, np.ndarray] = {}
    for decl in program.input_arrays():
        ids = [
            pseudo_inst[pseudo]
            for (name, _flat), pseudo in trace.cell_sources.items()
            if name == decl.name
        ]
        result[decl.name] = np.array(sorted(ids), dtype=np.int64)
    return result
