"""Quantization-site enumeration.

A *site* is a static program location where mantissa bits can be
discarded under some fixed-point specification.  Sites are
spec-independent: which sites exist depends only on the program
structure and the tie groups; *whether* a site is active (discards
bits) and how much it discards is a function of the specification,
evaluated in vectorized form by the analytical evaluator.

Site classes (mirroring the interpreter discipline in
``repro.fixedpoint.fxpinterp``):

``ALIGN``
    Operand alignment of ADD/SUB/MIN/MAX/NEG/ABS and the output
    requantization of STORE: from the producer's format to the
    consumer node's format.
``MUL_EDGE``
    Operand narrowing at a multiply input when SLP assigned the edge a
    lane word length (paper eq. (1) acting on operands).
``MUL_OUT``
    Requantization of the exact product to the multiply node's format.
``INPUT``
    Conversion of the continuous-amplitude environment signal into an
    input array's format (one site per input array; per-cell coherence
    is folded into the gain by the adjoint extractor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.fixedpoint.spec import SlotMap
from repro.ir.optypes import OpKind
from repro.ir.program import Program

__all__ = ["SiteKind", "Site", "enumerate_sites"]


class SiteKind(enum.Enum):
    ALIGN = "align"
    MUL_EDGE = "mul_edge"
    MUL_OUT = "mul_out"
    INPUT = "input"


@dataclass(frozen=True)
class Site:
    """One potential quantization point.

    ``gain_key`` identifies the adjoint aggregate carrying this site's
    noise to the output: ``("node", opid)``, ``("edge", opid, pos)`` or
    ``("input", array_name)``.
    """

    kind: SiteKind
    #: Consumer op id (-1 for INPUT sites).
    opid: int
    #: Operand position for edge-class sites, else -1.
    pos: int
    #: Slot whose format is the *source* precision (-1 when implicit).
    from_slot: int
    #: Slot whose format is the *destination* precision.
    to_slot: int
    gain_key: tuple

    def describe(self, slotmap: SlotMap) -> str:
        where = f"%{self.opid}" if self.opid >= 0 else ""
        return (
            f"{self.kind.value}{where}"
            f"[{slotmap.describe(self.to_slot)}]"
        )


def enumerate_sites(program: Program, slotmap: SlotMap) -> list[Site]:
    """All potential quantization sites of ``program``.

    Sites whose source and destination share a tie group can never
    discard bits and are omitted (e.g. the accumulator chain
    read-modify-write, whose formats are tied by construction).
    """
    sites: list[Site] = []
    root = slotmap.root_of

    for op in program.all_ops():
        kind = op.kind
        if kind is OpKind.MUL:
            for pos in (0, 1):
                producer = op.operands[pos]
                sites.append(Site(
                    SiteKind.MUL_EDGE, op.opid, pos,
                    from_slot=producer, to_slot=producer,
                    gain_key=("edge", op.opid, pos),
                ))
            sites.append(Site(
                SiteKind.MUL_OUT, op.opid, -1,
                from_slot=-1, to_slot=op.opid,
                gain_key=("node", op.opid),
            ))
        elif kind in (OpKind.ADD, OpKind.SUB, OpKind.MIN, OpKind.MAX,
                      OpKind.NEG, OpKind.ABS):
            for pos, producer in enumerate(op.operands):
                if root(producer) == root(op.opid):
                    continue
                sites.append(Site(
                    SiteKind.ALIGN, op.opid, pos,
                    from_slot=producer, to_slot=op.opid,
                    gain_key=("edge", op.opid, pos),
                ))
        elif kind is OpKind.STORE:
            producer = op.operands[0]
            if root(producer) == root(op.opid):
                continue
            sites.append(Site(
                SiteKind.ALIGN, op.opid, 0,
                from_slot=producer, to_slot=op.opid,
                gain_key=("node", op.opid),
            ))
        # LOAD/READVAR/WRITEVAR/CONST: format-tied or deterministic.

    for decl in program.input_arrays():
        slot = slotmap.slot_of_symbol(decl.name)
        sites.append(Site(
            SiteKind.INPUT, -1, -1,
            from_slot=-1, to_slot=slot,
            gain_key=("input", decl.name),
        ))
    return sites
