"""Closed-form accuracy evaluation (the paper's ``EVALACC``).

Given the spec-independent site gains (``repro.accuracy.adjoint``) the
output noise power is a closed-form function of the fixed-point
specification:

``P(spec) = sum_i var_i(spec) * K2_i  +  (sum_i mean_i(spec) * K1_i)^2
            + dc(spec)' C dc(spec)``

Evaluation is vectorized numpy over the site tables, so a call costs
microseconds — which is what makes the O(candidates^2) accuracy
conflict detection of the paper's Fig. 1c practical, exactly as
ID.Fix's generated noise expression did for the original.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accuracy.adjoint import NoiseGains, extract_gains
from repro.accuracy.sites import Site, SiteKind, enumerate_sites
from repro.fixedpoint.quantize import QuantMode, quantize_value
from repro.fixedpoint.spec import NO_NARROW, FixedPointSpec, SlotMap
from repro.ir.program import Program
from repro.utils import power_to_db

__all__ = ["AccuracyModel", "build_accuracy_model"]


@dataclass(frozen=True)
class _SiteTables:
    """Numpy-packed site data, grouped by evaluation formula."""

    # ALIGN-class: from producer format to consumer node format.
    al_from: np.ndarray
    al_to: np.ndarray
    al_k2: np.ndarray
    al_k1: np.ndarray
    # MUL operand edges (lane narrowing).
    me_op: np.ndarray
    me_pos: np.ndarray
    me_prod: np.ndarray
    me_k2: np.ndarray
    me_k1: np.ndarray
    # MUL outputs.
    mo_op: np.ndarray
    mo_a: np.ndarray
    mo_b: np.ndarray
    mo_k2: np.ndarray
    mo_k1: np.ndarray
    # INPUT conversions.
    in_to: np.ndarray
    in_k2: np.ndarray
    in_k1: np.ndarray


def _pack_sites(sites: list[Site], gains: NoiseGains) -> _SiteTables:
    def select(kind: SiteKind) -> list[Site]:
        return [s for s in sites if s.kind is kind]

    def arrays(items: list[Site], *getters):
        return [
            np.array([g(s) for s in items], dtype=np.int64) for g in getters
        ]

    def gain_arrays(items: list[Site]) -> tuple[np.ndarray, np.ndarray]:
        k2 = np.array([gains.gain(s.gain_key)[0] for s in items])
        k1 = np.array([gains.gain(s.gain_key)[1] for s in items])
        return k2, k1

    align = select(SiteKind.ALIGN)
    medge = select(SiteKind.MUL_EDGE)
    mout = select(SiteKind.MUL_OUT)
    inputs = select(SiteKind.INPUT)

    al_from, al_to = arrays(align, lambda s: s.from_slot, lambda s: s.to_slot)
    al_k2, al_k1 = gain_arrays(align)
    me_op, me_pos, me_prod = arrays(
        medge, lambda s: s.opid, lambda s: s.pos, lambda s: s.from_slot
    )
    me_k2, me_k1 = gain_arrays(medge)
    mo_op, = arrays(mout, lambda s: s.opid)
    mo_k2, mo_k1 = gain_arrays(mout)
    in_to, = arrays(inputs, lambda s: s.to_slot)
    in_k2, in_k1 = gain_arrays(inputs)
    return _SiteTables(
        al_from, al_to, al_k2, al_k1,
        me_op, me_pos, me_prod, me_k2, me_k1,
        mo_op, np.zeros(0), np.zeros(0), mo_k2, mo_k1,
        in_to, in_k2, in_k1,
    )


def _moments(
    f_from: np.ndarray, f_to: np.ndarray, mode: QuantMode
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized quantization moments; inactive sites yield zeros."""
    active = f_from > f_to
    q_to = np.where(active, np.ldexp(1.0, -f_to), 0.0)
    q_from = np.where(active, np.ldexp(1.0, -f_from), 0.0)
    var = (q_to * q_to - q_from * q_from) / 12.0
    if mode is QuantMode.ROUND:
        mean = q_from / 2.0
    else:
        mean = -(q_to - q_from) / 2.0
    return np.where(active, mean, 0.0), var


class AccuracyModel:
    """Fast analytical evaluator of output quantization-noise power."""

    def __init__(
        self,
        program: Program,
        slotmap: SlotMap,
        gains: NoiseGains,
        quant_mode: QuantMode = QuantMode.TRUNCATE,
        input_mode: QuantMode = QuantMode.TRUNCATE,
        const_mode: QuantMode = QuantMode.ROUND,
        include_coeff_error: bool = True,
    ) -> None:
        self.program = program
        self.slotmap = slotmap
        self.gains = gains
        self.quant_mode = quant_mode
        self.input_mode = input_mode
        self.const_mode = const_mode
        self.include_coeff_error = include_coeff_error
        self.sites = enumerate_sites(program, slotmap)
        self._tables = _pack_sites(self.sites, gains)
        self._coeff_slots = np.array(
            [entry.slot for entry in gains.coeff_entries], dtype=np.int64
        )
        self._coeff_values = np.array(
            [entry.value for entry in gains.coeff_entries], dtype=np.float64
        )
        self._coeff_cache: dict[tuple, float] = {}
        self.eval_count = 0

    # ------------------------------------------------------------------
    def noise_power(self, spec: FixedPointSpec) -> float:
        """Output noise power of ``spec`` (linear, not dB)."""
        self.eval_count += 1
        t = self._tables
        fwl = spec.fwl_vector()
        iwl = spec.iwl_vector()
        edge = spec.edge_wl_matrix()

        var_total = 0.0
        mean_total = 0.0

        if t.al_from.size:
            mean, var = _moments(fwl[t.al_from], fwl[t.al_to], self.quant_mode)
            var_total += float(np.dot(var, t.al_k2))
            mean_total += float(np.dot(mean, t.al_k1))

        if t.me_op.size:
            f_prod = fwl[t.me_prod]
            budget = edge[t.me_op, t.me_pos]
            f_cons = np.where(
                budget >= NO_NARROW,
                f_prod,
                np.minimum(f_prod, budget - iwl[t.me_prod]),
            )
            mean, var = _moments(f_prod, f_cons, self.quant_mode)
            var_total += float(np.dot(var, t.me_k2))
            mean_total += float(np.dot(mean, t.me_k1))

        if t.mo_op.size:
            f_from = self._mul_product_fwl(t.mo_op, fwl, iwl, edge)
            mean, var = _moments(f_from, fwl[t.mo_op], self.quant_mode)
            var_total += float(np.dot(var, t.mo_k2))
            mean_total += float(np.dot(mean, t.mo_k1))

        if t.in_to.size:
            q = np.ldexp(1.0, -fwl[t.in_to])
            var = q * q / 12.0
            var_total += float(np.dot(var, t.in_k2))
            if self.input_mode is QuantMode.TRUNCATE:
                mean_total += float(np.dot(-q / 2.0, t.in_k1))

        power = var_total + mean_total * mean_total
        if self.include_coeff_error and self._coeff_slots.size:
            power += self._coeff_power(fwl)
        return power

    def _mul_product_fwl(
        self,
        mul_ops: np.ndarray,
        fwl: np.ndarray,
        iwl: np.ndarray,
        edge: np.ndarray,
    ) -> np.ndarray:
        """Exact-product fractional bits per multiply node."""
        total = np.zeros(mul_ops.size, dtype=np.int64)
        for pos in (0, 1):
            producers = self._mul_producers[:, pos]
            f_prod = fwl[producers]
            budget = edge[mul_ops, pos]
            f_cons = np.where(
                budget >= NO_NARROW,
                f_prod,
                np.minimum(f_prod, budget - iwl[producers]),
            )
            total = total + f_cons
        return total

    @property
    def _mul_producers(self) -> np.ndarray:
        cached = getattr(self, "_mul_producers_cache", None)
        if cached is None:
            cached = np.array(
                [
                    self.program.op(int(opid)).operands
                    for opid in self._tables.mo_op
                ],
                dtype=np.int64,
            ).reshape(-1, 2)
            self._mul_producers_cache = cached
        return cached

    def _coeff_power(self, fwl: np.ndarray) -> float:
        key = tuple(int(f) for f in fwl[self._coeff_slots])
        found = self._coeff_cache.get(key)
        if found is None:
            residues = np.array([
                quantize_value(v, f, self.const_mode) - v
                for v, f in zip(self._coeff_values, key)
            ])
            found = float(residues @ self.gains.coeff_cov @ residues)
            self._coeff_cache[key] = found
        return found

    # ------------------------------------------------------------------
    def noise_db(self, spec: FixedPointSpec) -> float:
        """Output noise power in dB."""
        return power_to_db(self.noise_power(spec))

    def violates(self, spec: FixedPointSpec, constraint_db: float) -> bool:
        """True when ``spec`` exceeds the allowed noise power."""
        return self.noise_db(spec) > constraint_db

    def breakdown(self, spec: FixedPointSpec) -> list[tuple[str, float]]:
        """Per-site variance contributions, for diagnostics and tests."""
        contributions: list[tuple[str, float]] = []
        fwl = spec.fwl_vector()
        iwl = spec.iwl_vector()
        edge = spec.edge_wl_matrix()
        for site in self.sites:
            k2, _k1 = self.gains.gain(site.gain_key)
            f_from, f_to = self._site_precisions(site, fwl, iwl, edge)
            if f_from <= f_to:
                continue
            q_to = 2.0 ** -float(f_to)
            q_from = 0.0 if f_from > 10 ** 6 else 2.0 ** -float(f_from)
            var = (q_to * q_to - q_from * q_from) / 12.0
            contributions.append((site.describe(self.slotmap), var * k2))
        contributions.sort(key=lambda item: -item[1])
        return contributions

    def _site_precisions(self, site: Site, fwl, iwl, edge) -> tuple[int, int]:
        if site.kind is SiteKind.ALIGN:
            return int(fwl[site.from_slot]), int(fwl[site.to_slot])
        if site.kind is SiteKind.MUL_EDGE:
            f_prod = int(fwl[site.from_slot])
            budget = int(edge[site.opid, site.pos])
            if budget >= NO_NARROW:
                return f_prod, f_prod
            return f_prod, min(f_prod, budget - int(iwl[site.from_slot]))
        if site.kind is SiteKind.MUL_OUT:
            op = self.program.op(site.opid)
            total = 0
            for pos, producer in enumerate(op.operands):
                f_prod = int(fwl[producer])
                budget = int(edge[site.opid, pos])
                if budget >= NO_NARROW:
                    total += f_prod
                else:
                    total += min(f_prod, budget - int(iwl[producer]))
            return total, int(fwl[site.opid])
        # INPUT
        return 10 ** 7, int(fwl[site.to_slot])


def build_accuracy_model(
    program: Program,
    slotmap: SlotMap | None = None,
    n_ref_outputs: int = 4,
    seed: int = 90210,
    **kwargs,
) -> AccuracyModel:
    """Extract gains and build an :class:`AccuracyModel` in one call."""
    slotmap = slotmap or SlotMap(program)
    gains = extract_gains(program, slotmap, n_ref_outputs=n_ref_outputs,
                          seed=seed)
    return AccuracyModel(program, slotmap, gains, **kwargs)
