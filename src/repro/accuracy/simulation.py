"""Simulation-based accuracy evaluation.

The ground-truth counterpart of :class:`~repro.accuracy.analytical.AccuracyModel`:
run the bit-accurate fixed-point interpreter against the float
reference over representative stimuli and measure the output error
power.  Orders of magnitude slower than the analytical model, it is
used to *validate* specs (every flow result is checked against it in
the tests) rather than inside optimization loops.
"""

from __future__ import annotations

import numpy as np

from repro.accuracy.metrics import measured_noise_power
from repro.fixedpoint.fxpinterp import FixedPointInterpreter, FxpConfig
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.interp import Interpreter
from repro.ir.program import Program
from repro.utils import power_to_db

__all__ = ["SimulationAccuracyEvaluator"]


class SimulationAccuracyEvaluator:
    """Measure a spec's output noise power by bit-accurate execution."""

    def __init__(
        self,
        program: Program,
        n_stimuli: int = 3,
        seed: int = 424242,
        config: FxpConfig | None = None,
        discard: int = 0,
    ) -> None:
        self.program = program
        self.config = config or FxpConfig()
        self.discard = discard
        rng = np.random.default_rng(seed)
        self.stimuli: list[dict[str, np.ndarray]] = []
        for _ in range(n_stimuli):
            stimulus = {}
            for decl in program.input_arrays():
                lo, hi = decl.value_range  # type: ignore[misc]
                stimulus[decl.name] = rng.uniform(lo, hi, size=decl.shape)
            self.stimuli.append(stimulus)
        interpreter = Interpreter(program)
        self.references = [interpreter.run(s) for s in self.stimuli]

    # ------------------------------------------------------------------
    def noise_power(self, spec: FixedPointSpec) -> float:
        """Average measured output noise power over the stimuli."""
        total = 0.0
        for stimulus, reference in zip(self.stimuli, self.references):
            fxp = FixedPointInterpreter(self.program, spec, self.config)
            measured = fxp.run(stimulus)
            total += measured_noise_power(reference, measured, self.discard)
        return total / len(self.stimuli)

    def noise_db(self, spec: FixedPointSpec) -> float:
        """Measured output noise power in dB."""
        return power_to_db(self.noise_power(spec))

    def violates(self, spec: FixedPointSpec, constraint_db: float) -> bool:
        """True when the measured noise exceeds the constraint."""
        return self.noise_db(spec) > constraint_db
