"""Simulation-based accuracy evaluation.

The ground-truth counterpart of :class:`~repro.accuracy.analytical.AccuracyModel`:
run the bit-accurate fixed-point interpreter against the float
reference over representative stimuli and measure the output error
power.  Slower than the analytical model, it is used to *validate*
specs (every flow result is checked against it in the tests) rather
than inside optimization loops.

Execution is delegated to an :class:`~repro.ir.backend.EvaluationBackend`
resolved by name: the default ``batch`` backend evaluates every
stimulus (and every independent loop) as array lanes in one pass —
bit-identical to the ``scalar`` reference, an order of magnitude
faster (see ``benchmarks/test_bench_micro.py``).
"""

from __future__ import annotations

import numpy as np

from repro.accuracy.metrics import measured_noise_power
from repro.errors import AccuracyError
from repro.fixedpoint.fxpinterp import FxpConfig
from repro.fixedpoint.spec import FixedPointSpec
from repro.formats import get_format
from repro.ir.backend import DEFAULT_BACKEND, get_backend
from repro.ir.batch import FormatBatchInterpreter
from repro.ir.program import Program
from repro.utils import power_to_db

__all__ = ["FormatAccuracyEvaluator", "SimulationAccuracyEvaluator"]


class SimulationAccuracyEvaluator:
    """Measure a spec's output noise power by bit-accurate execution.

    ``n_stimuli`` and ``seed`` control the stimulus set (the CLI
    exposes them as ``--stimuli`` / ``--sim-seed``); ``backend`` names
    the evaluation backend executing both the float references and
    every fixed-point measurement.  ``force_object`` pins a multi-tier
    backend to its exact arbitrary-precision tier (tiers are
    bit-identical, so this only ever changes wall time).
    """

    def __init__(
        self,
        program: Program,
        n_stimuli: int = 3,
        seed: int = 424242,
        config: FxpConfig | None = None,
        discard: int = 0,
        backend: str = DEFAULT_BACKEND,
        force_object: bool = False,
    ) -> None:
        if n_stimuli < 1:
            raise AccuracyError(
                f"simulation needs at least one stimulus, got {n_stimuli}"
            )
        self.program = program
        self.config = config or FxpConfig()
        self.discard = discard
        self.backend = get_backend(backend)
        self.force_object = force_object
        rng = np.random.default_rng(seed)
        self.stimuli: list[dict[str, np.ndarray]] = []
        for _ in range(n_stimuli):
            stimulus = {}
            for decl in program.input_arrays():
                lo, hi = decl.value_range  # type: ignore[misc]
                stimulus[decl.name] = rng.uniform(lo, hi, size=decl.shape)
            self.stimuli.append(stimulus)
        self.references = self.backend.run_float(program, self.stimuli)

    # ------------------------------------------------------------------
    def noise_power(self, spec: FixedPointSpec) -> float:
        """Average measured output noise power over the stimuli."""
        measured = self.backend.run_fixed(
            self.program, spec, self.stimuli, self.config,
            force_object=self.force_object,
        )
        total = 0.0
        for reference, outputs in zip(self.references, measured):
            total += measured_noise_power(reference, outputs, self.discard)
        return total / len(self.stimuli)

    def tier(self, spec: FixedPointSpec) -> str:
        """Execution-tier label the backend picks for ``spec``
        (e.g. ``batch[int64]``), honouring ``force_object``."""
        if self.force_object and self.backend.tiers:
            return f"{self.backend.name}[object]"
        return self.backend.fixed_tier(self.program, spec, self.config)

    def noise_db(self, spec: FixedPointSpec) -> float:
        """Measured output noise power in dB."""
        return power_to_db(self.noise_power(spec))

    def violates(self, spec: FixedPointSpec, constraint_db: float) -> bool:
        """True when the measured noise exceeds the constraint."""
        return self.noise_db(spec) > constraint_db


class FormatAccuracyEvaluator:
    """Measure a binary float *format's* output noise on a kernel.

    The format-sweep counterpart of
    :class:`SimulationAccuracyEvaluator`: instead of a per-slot
    fixed-point spec, the quantization target is a whole-program
    numeric format from :mod:`repro.formats` (``float32``,
    ``bfloat16``, ``binary(E,M)``, …), executed with correctly-rounded
    RNE semantics by :class:`~repro.ir.batch.FormatBatchInterpreter`.
    References come from the ``bigfloat`` oracle by default, so the
    reported noise is the format's true rounding error rather than its
    distance from an itself-rounded float64 run.
    """

    def __init__(
        self,
        program: Program,
        format_name: str,
        n_stimuli: int = 3,
        seed: int = 424242,
        discard: int = 0,
        reference_backend: str = "bigfloat",
    ) -> None:
        if n_stimuli < 1:
            raise AccuracyError(
                f"simulation needs at least one stimulus, got {n_stimuli}"
            )
        spec = get_format(format_name)
        if spec.kind != "float":
            raise AccuracyError(
                f"format {spec.name!r} (kind {spec.kind!r}) is not a "
                f"measurable quantization format"
            )
        self.program = program
        self.format = spec
        self.discard = discard
        self.reference_backend = get_backend(reference_backend)
        rng = np.random.default_rng(seed)
        self.stimuli: list[dict[str, np.ndarray]] = []
        for _ in range(n_stimuli):
            stimulus = {}
            for decl in program.input_arrays():
                lo, hi = decl.value_range  # type: ignore[misc]
                stimulus[decl.name] = rng.uniform(lo, hi, size=decl.shape)
            self.stimuli.append(stimulus)
        self.references = self.reference_backend.run_float(
            program, self.stimuli
        )

    # ------------------------------------------------------------------
    def measured_outputs(self) -> list[dict[str, np.ndarray]]:
        """Format-rounded execution outputs, one dict per stimulus."""
        return FormatBatchInterpreter(self.program, self.format).run(
            self.stimuli
        )

    def noise_power(self) -> float:
        """Average output noise power of the format over the stimuli."""
        total = 0.0
        for reference, outputs in zip(self.references,
                                      self.measured_outputs()):
            total += measured_noise_power(reference, outputs, self.discard)
        return total / len(self.stimuli)

    def noise_db(self) -> float:
        """Measured format noise power in dB."""
        return power_to_db(self.noise_power())
