"""Legacy setup shim.

The offline environment this project targets has setuptools but no
``wheel`` package, so PEP 517 editable installs cannot build a wheel
for metadata.  Keeping a ``setup.py`` (and omitting ``[build-system]``
from pyproject.toml) makes ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SLP-aware word-length optimization for embedded SIMD processors "
        "(DATE 2017 reproduction)"
    ),
    author="repro contributors",
    license="MIT",
    # Keep in sync with [tool.ruff] target-version in pyproject.toml
    # and the CI test matrix (.github/workflows/ci.yml).
    python_requires=">=3.10",
    classifiers=[
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
    ],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
